// SACK machinery (RFC 2018): the sender-side scoreboard of peer-acknowledged
// sequence ranges, and the receiver-side block builder fed from the
// out-of-order buffer. The scoreboard is a small fixed array of sorted,
// disjoint ranges — bounded, allocation-free, and cheap to scan, which is
// what keeps the CC hot path at zero allocations.
package tcp

// sackBlock is one SACKed range [start, end) in sequence space.
type sackBlock struct {
	start, end uint32
}

// maxSackRanges bounds the scoreboard. Sixteen disjoint holes in flight is
// already pathological for the window sizes the simulator runs; beyond it,
// new blocks that cannot merge are dropped (conservative: a dropped block
// only delays selective retransmit, never corrupts it).
const maxSackRanges = 16

// scoreboard tracks peer-SACKed sequence ranges above snd.una, kept sorted
// and disjoint.
type scoreboard struct {
	r [maxSackRanges]sackBlock
	n int
}

func (sb *scoreboard) reset() { sb.n = 0 }

// add merges one SACK block in and reports whether it covered sequence space
// the scoreboard had not seen (the "new information" test dup-ACK counting
// uses once window updates stop qualifying segments as duplicates).
func (sb *scoreboard) add(b sackBlock) bool {
	if !seqLT(b.start, b.end) {
		return false
	}
	// Locate the run of existing ranges overlapping or touching b.
	i := 0
	for i < sb.n && seqLT(sb.r[i].end, b.start) {
		i++
	}
	j := i
	for j < sb.n && seqLE(sb.r[j].start, b.end) {
		j++
	}
	if i == j {
		// Disjoint from everything: pure insertion.
		if sb.n == len(sb.r) {
			return false
		}
		copy(sb.r[i+1:sb.n+1], sb.r[i:sb.n])
		sb.r[i] = b
		sb.n++
		return true
	}
	// Merge b with ranges [i, j). New info if b extends below the first,
	// above the last, or bridges a gap between two existing ranges.
	newInfo := seqLT(b.start, sb.r[i].start) || seqGT(b.end, sb.r[j-1].end) || j-i > 1
	if seqLT(sb.r[i].start, b.start) {
		b.start = sb.r[i].start
	}
	if seqGT(sb.r[j-1].end, b.end) {
		b.end = sb.r[j-1].end
	}
	sb.r[i] = b
	copy(sb.r[i+1:], sb.r[j:sb.n])
	sb.n -= j - i - 1
	return newInfo
}

// advance discards ranges at or below una (cumulatively acknowledged data
// needs no scoreboard entry).
func (sb *scoreboard) advance(una uint32) {
	k := 0
	for i := 0; i < sb.n; i++ {
		if seqLE(sb.r[i].end, una) {
			continue
		}
		r := sb.r[i]
		if seqLT(r.start, una) {
			r.start = una
		}
		sb.r[k] = r
		k++
	}
	sb.n = k
}

// sackedBytes totals the selectively acknowledged sequence space.
func (sb *scoreboard) sackedBytes() uint32 {
	var total uint32
	for i := 0; i < sb.n; i++ {
		total += sb.r[i].end - sb.r[i].start
	}
	return total
}

// nextHole returns the first un-SACKed gap at or after from that lies below
// SACKed data — the next candidate for selective retransmit. Sequence space
// above the highest SACKed byte is not presumed lost and is never returned.
func (sb *scoreboard) nextHole(from uint32) (start, end uint32, ok bool) {
	for i := 0; i < sb.n; i++ {
		if seqLT(from, sb.r[i].start) {
			return from, sb.r[i].start, true
		}
		if seqLT(from, sb.r[i].end) {
			from = sb.r[i].end
		}
	}
	return 0, 0, false
}

// --- receiver side ---

// buildSackBlocks derives SACK blocks from the out-of-order buffer:
// contiguous runs of buffered segments, most recently touched run first
// (RFC 2018 §4 requires the first block to contain the triggering segment).
// It fills dst and returns how many blocks were written.
func (c *Conn) buildSackBlocks(dst []sackBlock) int {
	n := 0
	first := -1
	for i := 0; i < len(c.ooo) && n < len(dst); {
		o := c.ooo[i]
		run := sackBlock{start: o.seq, end: oooEnd(o)}
		i++
		for i < len(c.ooo) && seqLE(c.ooo[i].seq, run.end) {
			if e := oooEnd(c.ooo[i]); seqGT(e, run.end) {
				run.end = e
			}
			i++
		}
		if first < 0 && seqLE(run.start, c.lastOOOSeq) && seqLT(c.lastOOOSeq, run.end) {
			first = n
		}
		dst[n] = run
		n++
	}
	if first > 0 {
		dst[0], dst[first] = dst[first], dst[0]
	}
	return n
}

// oooEnd is the sequence number one past an out-of-order segment (a buffered
// FIN occupies one sequence number).
func oooEnd(o oooSeg) uint32 {
	e := o.seq + uint32(len(o.payload))
	if o.fin {
		e++
	}
	return e
}

// ackOpts builds the option block for an outgoing ACK: SACK blocks when the
// peer negotiated them and out-of-order data is buffered, nothing otherwise.
// The bytes live in the connection's scratch buffer — valid until the next
// call, long enough for sendSegment to copy them onto the wire.
func (c *Conn) ackOpts() []byte {
	if !c.peerSackOK || len(c.ooo) == 0 {
		return nil
	}
	var blocks [maxSentSackBlocks]sackBlock
	n := c.buildSackBlocks(blocks[:])
	if n == 0 {
		return nil
	}
	c.stats.SacksSent++
	return putSackOption(c.optBuf[:], blocks[:n])
}
