package tcp

// White-box ladder tests for the congestion-control plane: RFC 3465 byte
// counting and the ssthresh-crossing clamp, NewReno's reduction policy, the
// global cwnd clamps, the SACK scoreboard's merge/advance/hole arithmetic,
// the RFC 793 WL1/WL2 window-update freshness rule, the configurable RTO
// floor, and a zero-alloc pin over the per-ACK hot path. End-to-end recovery
// behaviour (partial ACKs on a real wire, retransmit-lost-retransmit, the
// delayed-ACK clock) is exercised in internal/plexus.

import (
	"testing"

	"plexus/internal/sim"
)

// ccTestConn builds a bare connection bound to algo with the given windows.
func ccTestConn(s *sim.Sim, algo string, mss, cwnd, ssthresh uint32) *Conn {
	c := &Conn{mgr: &Manager{sim: s}, mss: mss, rto: initialRTO}
	c.snd.cwnd = cwnd
	c.snd.ssthresh = ssthresh
	c.cc = newCC(algo)
	c.cc.Init(c)
	return c
}

// A single ACK whose byte credit would carry cwnd past ssthresh must stop
// exactly at the crossing: the remainder belongs to congestion avoidance,
// which demands a full cwnd of acked bytes per MSS of growth.
func TestSlowStartClampsAtSsthreshCrossing(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1000, 9000, 10000)
	c.cc.OnAck(c, 4000)
	if c.snd.cwnd != 10000 {
		t.Errorf("cwnd = %d, want exactly ssthresh (10000); slow start overshot the crossing", c.snd.cwnd)
	}
}

// RFC 3465 L=2·SMSS: one ACK may grow slow-start cwnd by at most two
// segments no matter how much it acknowledges, and the excess credit is
// discarded — a stretch ACK must not buy the whole burst's growth at once.
func TestSlowStartStretchAckCappedAtTwoMSS(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1000, 2000, 100000)
	c.cc.OnAck(c, 10000)
	if c.snd.cwnd != 4000 {
		t.Errorf("cwnd = %d after 10000-byte stretch ACK, want 4000 (2·MSS growth)", c.snd.cwnd)
	}
	// The 8000 bytes beyond the cap must not have been banked.
	c.cc.OnAck(c, 1000)
	if c.snd.cwnd != 5000 {
		t.Errorf("cwnd = %d, want 5000; excess stretch-ACK credit was banked", c.snd.cwnd)
	}
}

// Congestion avoidance grows one MSS per cwnd's worth of acknowledged bytes,
// accumulated across ACKs (byte counting, not packet counting).
func TestCongestionAvoidanceByteCounting(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1000, 10000, 10000)
	c.cc.OnAck(c, 6000)
	if c.snd.cwnd != 10000 {
		t.Errorf("cwnd = %d, want 10000 (6000 < cwnd acked, no growth yet)", c.snd.cwnd)
	}
	c.cc.OnAck(c, 4000)
	if c.snd.cwnd != 11000 {
		t.Errorf("cwnd = %d, want 11000 (a full cwnd of bytes acked)", c.snd.cwnd)
	}
}

// RFC 5681: ssthresh after loss is max(FlightSize/2, 2·SMSS).
func TestSsthreshAfterLossFloor(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1000, 64000, 64000)
	c.snd.una, c.snd.nxt = 5000, 8000 // flight 3000: half is below the floor
	if got := c.cc.SsthreshAfterLoss(c); got != 2000 {
		t.Errorf("ssthresh = %d for 3000-byte flight, want the 2·MSS floor (2000)", got)
	}
	c.snd.nxt = 25000 // flight 20000
	if got := c.cc.SsthreshAfterLoss(c); got != 10000 {
		t.Errorf("ssthresh = %d for 20000-byte flight, want 10000", got)
	}
}

// setCwnd enforces the global clamps: never below one MSS, never above
// maxCwnd — no matter what an algorithm asks for.
func TestCwndGlobalClamps(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1460, 10000, 10000)
	c.setCwnd(10)
	if c.snd.cwnd != 1460 {
		t.Errorf("cwnd = %d, want the 1-MSS floor", c.snd.cwnd)
	}
	c.setCwnd(1 << 30)
	if c.snd.cwnd != maxCwnd {
		t.Errorf("cwnd = %d, want the maxCwnd clamp (%d)", c.snd.cwnd, maxCwnd)
	}
	// Growth through OnAck must respect the cap too.
	c.snd.ssthresh = maxCwnd
	c.snd.cwnd = maxCwnd
	c.cc.OnAck(c, maxCwnd) // full-cwnd credit in avoidance
	if c.snd.cwnd != maxCwnd {
		t.Errorf("cwnd = %d grew past maxCwnd", c.snd.cwnd)
	}
}

// Unknown algorithm names must degrade to NewReno, not crash a sweep.
func TestCCRegistryFallback(t *testing.T) {
	if got := newCC("no-such-algorithm").Name(); got != "newreno" {
		t.Errorf("fallback algorithm = %q, want newreno", got)
	}
	names := CCNames()
	want := map[string]bool{"newreno": false, "cubic": false, "bbr": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("CCNames() = %v is missing %q", names, n)
		}
	}
}

// --- scoreboard ---

func sbRanges(sb *scoreboard) []sackBlock { return sb.r[:sb.n] }

func TestScoreboardMergeAndBridge(t *testing.T) {
	var sb scoreboard
	if !sb.add(sackBlock{100, 200}) || !sb.add(sackBlock{300, 400}) {
		t.Fatal("disjoint adds must report new information")
	}
	if sb.add(sackBlock{120, 180}) {
		t.Error("fully covered block reported as new information")
	}
	// Bridge the gap: one range [100,400) remains.
	if !sb.add(sackBlock{150, 350}) {
		t.Error("gap-bridging block must report new information")
	}
	if got := sbRanges(&sb); len(got) != 1 || got[0] != (sackBlock{100, 400}) {
		t.Errorf("ranges = %v, want [{100 400}]", got)
	}
	if sb.sackedBytes() != 300 {
		t.Errorf("sackedBytes = %d, want 300", sb.sackedBytes())
	}
}

func TestScoreboardAdvanceTrimsPartialOverlap(t *testing.T) {
	var sb scoreboard
	sb.add(sackBlock{100, 200})
	sb.add(sackBlock{300, 400})
	sb.advance(350) // first range gone, second trimmed to [350,400)
	if got := sbRanges(&sb); len(got) != 1 || got[0] != (sackBlock{350, 400}) {
		t.Errorf("ranges after advance(350) = %v, want [{350 400}]", got)
	}
}

func TestScoreboardNextHole(t *testing.T) {
	var sb scoreboard
	sb.add(sackBlock{200, 300})
	sb.add(sackBlock{400, 500})
	start, end, ok := sb.nextHole(100)
	if !ok || start != 100 || end != 200 {
		t.Errorf("nextHole(100) = [%d,%d) %v, want [100,200) true", start, end, ok)
	}
	start, end, ok = sb.nextHole(250)
	if !ok || start != 300 || end != 400 {
		t.Errorf("nextHole(250) = [%d,%d) %v, want [300,400) true", start, end, ok)
	}
	// Above the highest SACKed byte nothing is presumed lost.
	if _, _, ok = sb.nextHole(500); ok {
		t.Error("nextHole(500) found a hole above all SACKed data")
	}
}

// --- RFC 793 WL1/WL2 window-update freshness ---

func TestWindowUpdateFreshnessRule(t *testing.T) {
	c := ccTestConn(sim.New(1), "newreno", 1000, 10000, 10000)
	c.snd.wl1, c.snd.wl2, c.snd.wnd = 1000, 5000, 8000

	// A reordered segment with an older sequence number must not touch the
	// window, whatever it advertises.
	c.updateSndWnd(seg{seq: 900, ack: 6000, wnd: 100})
	if c.snd.wnd != 8000 {
		t.Errorf("stale-seq segment shrank snd.wnd to %d", c.snd.wnd)
	}
	// Same seq, older ack: also stale.
	c.updateSndWnd(seg{seq: 1000, ack: 4999, wnd: 100})
	if c.snd.wnd != 8000 {
		t.Errorf("stale-ack segment shrank snd.wnd to %d", c.snd.wnd)
	}
	if c.stats.StaleWndUpdates != 2 {
		t.Errorf("StaleWndUpdates = %d, want 2", c.stats.StaleWndUpdates)
	}
	// Same seq, same ack: a legitimate pure window update.
	c.updateSndWnd(seg{seq: 1000, ack: 5000, wnd: 9000})
	if c.snd.wnd != 9000 {
		t.Errorf("same-seq same-ack update refused; snd.wnd = %d, want 9000", c.snd.wnd)
	}
	// Fresher sequence number: accepted, and WL1/WL2 move forward.
	c.updateSndWnd(seg{seq: 2000, ack: 5000, wnd: 4000})
	if c.snd.wnd != 4000 || c.snd.wl1 != 2000 || c.snd.wl2 != 5000 {
		t.Errorf("fresh update not applied: wnd=%d wl1=%d wl2=%d", c.snd.wnd, c.snd.wl1, c.snd.wl2)
	}
}

// --- configurable RTO floor ---

func TestMinRTOConfigurableFloor(t *testing.T) {
	s := sim.New(1)
	run := func(floor sim.Time) sim.Time {
		c := &Conn{mgr: &Manager{sim: s, minRTO: floor}, rto: initialRTO}
		c.startRTT(100)
		c.sampleRTT(101) // zero-delay sample: srtt+4·rttvar is tiny
		return c.rto
	}
	if got := run(200 * sim.Millisecond); got != 200*sim.Millisecond {
		t.Errorf("rto = %v with a 200ms floor configured, want 200ms", got)
	}
	if got := run(0); got != minRTO {
		t.Errorf("rto = %v with no floor configured, want the %v default", got, minRTO)
	}
}

// --- zero-alloc pin ---

// The steady-state per-ACK path — congestion-control policy plus scoreboard
// bookkeeping — must not allocate for any algorithm.
func TestCCHotPathZeroAlloc(t *testing.T) {
	s := sim.New(1)
	for _, algo := range CCNames() {
		c := ccTestConn(s, algo, 1460, 14600, 64000)
		c.snd.una, c.snd.nxt = 1000, 15000
		var sb scoreboard
		seq := uint32(2000)
		allocs := testing.AllocsPerRun(1000, func() {
			c.cc.OnAck(c, 1460)
			c.cc.OnRTTSample(c, 3*sim.Millisecond)
			c.cc.PacingDelay(c, 1460)
			sb.add(sackBlock{seq, seq + 500})
			sb.nextHole(seq - 1000)
			sb.advance(seq - 500)
			seq += 1000
			if c.snd.cwnd > 1<<20 {
				c.snd.cwnd = 14600 // keep the run in steady state
			}
		})
		if allocs != 0 {
			t.Errorf("%s: %v allocs per ACK on the hot path, want 0", algo, allocs)
		}
	}
}
