// CUBIC (RFC 8312) congestion control: window growth is a cubic function of
// time since the last reduction, anchored at W_max (the window where loss
// last occurred), with a TCP-friendly floor so short-RTT flows never do
// worse than Reno. All float arithmetic runs on simulated time, so results
// are bit-identical at any -parallel/-shards setting.
package tcp

import (
	"math"

	"plexus/internal/sim"
)

func init() { RegisterCC("cubic", newCubic) }

const (
	// cubicBeta is the multiplicative decrease factor (RFC 8312 §4.5).
	cubicBeta = 0.7
	// cubicC scales the cubic term (segments per second cubed).
	cubicC = 0.4
)

type cubic struct {
	acc    uint32   // ABC accumulator during slow start
	cnt    uint32   // segments acked toward the next cwnd increment
	wmax   float64  // window (segments) at the last reduction
	k      float64  // seconds for the cubic to regrow to wmax
	epoch  sim.Time // start of the current avoidance epoch (0 = unset)
	origin float64  // cubic origin point (segments)
}

func newCubic() CongestionControl { return &cubic{} }

func (*cubic) Name() string                       { return "cubic" }
func (*cubic) Init(*Conn)                         {}
func (*cubic) OwnsCwnd() bool                     { return false }
func (*cubic) OnRTTSample(*Conn, sim.Time)        {}
func (*cubic) PacingDelay(*Conn, uint32) sim.Time { return 0 }

func (cu *cubic) OnAck(c *Conn, acked uint32) {
	if c.snd.cwnd < c.snd.ssthresh {
		cu.acc += acked
		slowStartGrow(c, &cu.acc)
		if c.snd.cwnd < c.snd.ssthresh {
			return
		}
		// Crossed into avoidance: the leftover credit seeds the counter and
		// a fresh cubic epoch starts on the next ACK.
		cu.cnt += cu.acc / c.mss
		cu.acc = 0
		cu.epoch = 0
	}
	now := c.mgr.sim.Now()
	mss := float64(c.mss)
	cwndSegs := float64(c.snd.cwnd) / mss
	if cu.epoch == 0 {
		cu.epoch = now
		if cwndSegs < cu.wmax {
			cu.origin = cu.wmax
			cu.k = math.Cbrt((cu.wmax - cwndSegs) / cubicC)
		} else {
			cu.origin = cwndSegs
			cu.k = 0
		}
	}
	// Target one SRTT ahead, per RFC 8312 §4.1.
	t := float64(now-cu.epoch+c.srtt) / float64(sim.Second)
	d := t - cu.k
	target := cu.origin + cubicC*d*d*d
	// TCP-friendly region (RFC 8312 §4.2): never slower than an equivalent
	// AIMD flow with the matched beta.
	rtt := float64(c.srtt) / float64(sim.Second)
	if rtt <= 0 {
		rtt = 0.1
	}
	if est := cu.wmax*cubicBeta + 3*(1-cubicBeta)/(1+cubicBeta)*(t/rtt); est > target {
		target = est
	}
	if target <= cwndSegs {
		return // at or above the curve: hold
	}
	// Spread the climb to target over roughly one window of ACKed segments
	// (the classic cwnd_cnt formulation, byte-counted).
	cu.acc += acked
	cu.cnt += cu.acc / c.mss
	cu.acc %= c.mss
	step := cwndSegs / (target - cwndSegs)
	if step < 1 {
		step = 1
	}
	need := uint32(step)
	for cu.cnt >= need {
		cu.cnt -= need
		c.setCwnd(c.snd.cwnd + c.mss)
	}
}

// SsthreshAfterLoss applies the multiplicative decrease and records W_max,
// with fast convergence (RFC 8312 §4.6): a loss below the previous W_max
// means capacity shrank, so the anchor is pulled down further.
func (cu *cubic) SsthreshAfterLoss(c *Conn) uint32 {
	cwndSegs := float64(c.snd.cwnd) / float64(c.mss)
	if cwndSegs < cu.wmax {
		cu.wmax = cwndSegs * (1 + cubicBeta) / 2
	} else {
		cu.wmax = cwndSegs
	}
	cu.epoch = 0
	ss := uint32(float64(c.snd.cwnd) * cubicBeta)
	if ss < 2*c.mss {
		ss = 2 * c.mss
	}
	return ss
}

func (cu *cubic) OnEnterRecovery(*Conn) { cu.acc, cu.cnt = 0, 0 }

func (cu *cubic) OnExitRecovery(*Conn) {
	cu.acc, cu.cnt = 0, 0
	cu.epoch = 0
}

func (cu *cubic) OnRTO(*Conn) {
	cu.acc, cu.cnt = 0, 0
	cu.epoch = 0
}
