// The telemetry sampling hook. It lives next to the setState choke point
// (audit.go) and follows the same philosophy: the transport exports cheap,
// allocation-free views of per-connection state and leaves policy — which
// series to keep, what to alarm on — to the telemetry plane, which cannot be
// imported from here (it sits above the transport).
//
// Two pieces make periodic whole-stack sampling deterministic and free:
//
//   - EachConn iterates the manager's creation-ordered connection list, not
//     the demux map, so probe order (and therefore every exported byte) is
//     identical run to run at any -parallel or -shards setting.
//   - Each Conn carries one opaque probe tag. The telemetry probe stashes
//     its per-connection series handles there on first sight (the only
//     allocation, amortized over the connection's life) and the per-tick
//     path is pure field reads.
package tcp

import (
	"plexus/internal/event"
	"plexus/internal/sim"
)

// HostName returns the precomputed host label (the CPU name).
func (m *Manager) HostName() string { return m.hostName }

// AttachHealth contributes the manager's conformance counters (rejected
// RSTs, TIME-WAIT quiet-period activity) to the dispatcher's Health
// snapshot, the same way the mbuf pool contributes its gauge.
func (m *Manager) AttachHealth(d *event.Dispatcher) {
	d.AttachTCPGauge(func() event.TCPGauge {
		return event.TCPGauge{
			RSTsRejected:       m.stats.RSTsRejected,
			TimeWaitRearms:     m.stats.TimeWaitRearms,
			TimeWaitQuietDrops: m.stats.TimeWaitQuietDrops,
			FastRecoveries:     m.stats.FastRecoveries,
			SackRexmits:        m.stats.SackRexmits,
		}
	})
}

// EachConn calls fn for every live connection in creation order.
func (m *Manager) EachConn(fn func(*Conn)) {
	for _, c := range m.connList {
		fn(c)
	}
}

// SetProbeTag attaches an opaque per-connection slot for the telemetry
// probe; the tag dies with the TCB.
func (c *Conn) SetProbeTag(tag any) { c.probeTag = tag }

// ProbeTag returns the slot set by SetProbeTag (nil if unset).
func (c *Conn) ProbeTag() any { return c.probeTag }

// SndWnd returns the peer-advertised send window.
func (c *Conn) SndWnd() uint32 { return c.snd.wnd }

// Cwnd returns the congestion window.
func (c *Conn) Cwnd() uint32 { return c.snd.cwnd }

// Ssthresh returns the slow-start threshold.
func (c *Conn) Ssthresh() uint32 { return c.snd.ssthresh }

// RcvWnd returns the advertised receive window.
func (c *Conn) RcvWnd() uint32 { return c.rcv.wnd }

// BytesInFlight returns snd.nxt - snd.una: sequence space sent but not yet
// acknowledged (SYN and FIN each count one).
func (c *Conn) BytesInFlight() uint32 { return c.snd.nxt - c.snd.una }

// AckedBytes returns snd.una - iss: cumulative forward progress in sequence
// space. A frozen AckedBytes with nonzero BytesInFlight is the no-progress
// watchdog's trigger condition.
func (c *Conn) AckedBytes() uint32 { return c.snd.una - c.snd.iss }

// SRTT returns the smoothed round-trip estimate (0 before the first sample).
func (c *Conn) SRTT() sim.Time { return c.srtt }

// CCName returns the congestion-control algorithm bound to the connection.
func (c *Conn) CCName() string { return c.ccName }

// Recovery returns the sender's loss-recovery phase.
func (c *Conn) Recovery() RecoveryState { return c.recovery }

// SackedBytes returns the sequence space the peer has selectively
// acknowledged above snd.una.
func (c *Conn) SackedBytes() uint32 { return c.sb.sackedBytes() }

// SackEnabled reports whether SACK was negotiated on the handshake.
func (c *Conn) SackEnabled() bool { return c.peerSackOK }

// WndScales returns the negotiated send/receive window-scale shifts.
func (c *Conn) WndScales() (snd, rcv uint8) { return c.sndWndScale, c.rcvWndScale }
