package tcp

import (
	"sort"

	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// segArrives is the connection's handler on TCP.PacketRecv: the RFC 793
// segment-arrives processing, simplified to the paths the reproduction
// exercises but honest about ordering, windows, and loss.
func (c *Conn) segArrives(t *sim.Task, pkt *mbuf.Mbuf) {
	defer pkt.Free()
	if c.dead {
		return
	}
	s, ok := parseSeg(pkt)
	if !ok {
		return
	}
	c.stats.SegsRcvd++

	switch c.state {
	case StateSynSent:
		c.synSentInput(t, s)
		return
	case StateClosed, StateListen:
		return
	case StateTimeWait:
		c.timeWaitInput(t, s)
		return
	}

	// 1. RST validation (RFC 793 p.37, hardened against the blind-reset
	// attacks RFC 5961 describes): a RST aborts the connection only when
	// its sequence number falls inside the receive window. A stale or
	// forged RST is counted and dropped — it must not assassinate a live
	// connection.
	if s.flags&view.TCPRst != 0 {
		if c.rstAcceptable(s) {
			c.teardown(ErrReset, segCause(s))
		} else {
			c.mgr.stats.RSTsRejected++
		}
		return
	}
	// 2. Sequence acceptability (RFC 793 p.69, simplified): the segment
	// must overlap the receive window.
	if !c.seqAcceptable(s) {
		c.sendACK(t)
		return
	}
	// 3. SYN in the window: error, reset.
	if s.flags&view.TCPSyn != 0 && c.state != StateSynRcvd {
		c.Abort(t)
		return
	}
	// Duplicate SYN|ACK retransmission handling in SYN-RCVD: re-ack.
	if c.state == StateSynRcvd && s.flags&view.TCPSyn != 0 {
		c.stats.SegsSent++
		c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.iss, c.rcv.nxt, view.TCPSyn|view.TCPAck, c.rcv.wnd, c.synOpts(true), nil)
		return
	}
	// 4. ACK processing.
	if s.flags&view.TCPAck == 0 {
		return
	}
	if c.state == StateSynRcvd {
		if seqLE(c.snd.una, s.ack) && seqLE(s.ack, c.snd.nxt) {
			c.establish(t, segCause(s))
		} else {
			c.mgr.stats.RSTsSent++
			c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, s.ack, 0, view.TCPRst, 0, nil, nil)
			return
		}
	}
	c.processAck(t, s)
	if c.dead {
		return
	}
	// 5. Payload and FIN processing.
	c.processText(t, s)
}

// synSentInput handles segments in SYN-SENT (active open). A RST here is
// honoured only when its ACK acknowledges our SYN (RFC 793 p.37) — a blind
// RST with a stale or missing ACK is counted and dropped.
func (c *Conn) synSentInput(t *sim.Task, s seg) {
	acceptableAck := false
	if s.flags&view.TCPAck != 0 {
		if seqLE(s.ack, c.snd.iss) || seqGT(s.ack, c.snd.nxt) {
			if s.flags&view.TCPRst != 0 {
				c.mgr.stats.RSTsRejected++
			} else {
				c.mgr.stats.RSTsSent++
				c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, s.ack, 0, view.TCPRst, 0, nil, nil)
			}
			return
		}
		acceptableAck = true
	}
	if s.flags&view.TCPRst != 0 {
		if acceptableAck {
			c.teardown(ErrReset, segCause(s))
		} else {
			c.mgr.stats.RSTsRejected++
		}
		return
	}
	if s.flags&view.TCPSyn == 0 {
		return
	}
	c.rcv.irs = s.seq
	c.rcv.nxt = s.seq + 1
	// SYN windows are unscaled; wl1/wl2 seed the freshness rule.
	c.snd.wnd = s.wnd
	c.snd.wl1 = s.seq
	c.snd.wl2 = s.ack
	c.applySynOptions(s)
	if acceptableAck {
		c.snd.una = s.ack
		c.sampleRTT(s.ack)
		c.establish(t, segCause(s))
		c.sendACK(t)
		c.output(t)
	} else {
		// Simultaneous open.
		c.setState(StateSynRcvd, segCause(s))
		c.sendSYNACK(t)
	}
}

// timeWaitInput handles segments in TIME-WAIT. RSTs are ignored (RFC 1337's
// TIME-WAIT assassination hazard: the state may only exit via the 2*MSL
// timer — the conformance checker enforces exactly that); a retransmitted
// FIN restarts the timer and is re-ACKed; any other old segment draws the
// standing ACK.
func (c *Conn) timeWaitInput(t *sim.Task, s seg) {
	if s.flags&view.TCPRst != 0 {
		c.mgr.stats.RSTsRejected++
		return
	}
	if s.flags&view.TCPSyn != 0 {
		return // a new incarnation must wait out the 2*MSL quiet time
	}
	if s.flags&view.TCPFin != 0 && seqLE(s.seq, c.rcv.nxt) {
		// A retransmitted FIN: our ACK of it was lost. Re-ACK and restart
		// the 2*MSL timer (RFC 793 p.73).
		c.mgr.stats.TimeWaitRearms++
		c.rearmTimeWait()
		c.sendACK(t)
		return
	}
	if !c.seqAcceptable(s) {
		c.sendACK(t)
		return
	}
	// In-window duplicate ACKs and old data draw no reply: both ends of a
	// simultaneous close sit in TIME-WAIT, and answering every segment
	// would have the two trade ACKs until the storm breaks the loop.
	c.mgr.stats.TimeWaitQuietDrops++
}

// rstAcceptable validates a RST's sequence number against the receive window
// (RFC 793 p.37): only an in-window RST may abort the connection.
func (c *Conn) rstAcceptable(s seg) bool {
	if c.rcv.wnd == 0 {
		return s.seq == c.rcv.nxt
	}
	return seqLE(c.rcv.nxt, s.seq) && seqLT(s.seq, c.rcv.nxt+c.rcv.wnd)
}

// establish transitions into ESTABLISHED and notifies the application (and,
// for passive opens, the listener's accept function).
func (c *Conn) establish(t *sim.Task, cause Cause) {
	wasSynRcvd := c.state == StateSynRcvd
	c.setState(StateEstablished, cause)
	c.disarmRexmit()
	c.synRetries = 0
	if wasSynRcvd && c.listener != nil && c.listener.accept != nil {
		c.listener.accept(t, c)
	}
	if c.opts.OnEstablished != nil {
		c.opts.OnEstablished(t, c)
	}
}

// seqAcceptable implements the four-case acceptability test.
func (c *Conn) seqAcceptable(s seg) bool {
	slen := s.segTextLen()
	if c.rcv.wnd == 0 {
		return slen == 0 && s.seq == c.rcv.nxt
	}
	wndEnd := c.rcv.nxt + c.rcv.wnd
	if slen == 0 {
		return seqLE(c.rcv.nxt, s.seq) && seqLT(s.seq, wndEnd) || s.seq == c.rcv.nxt ||
			// Old pure ACKs (e.g. retransmitted SYN|ACK acks) are
			// tolerated: they carry useful ACK fields.
			seqLT(s.seq, c.rcv.nxt)
	}
	segEnd := s.seq + slen - 1
	return (seqLE(c.rcv.nxt, s.seq) && seqLT(s.seq, wndEnd)) ||
		(seqLE(c.rcv.nxt, segEnd) && seqLT(segEnd, wndEnd))
}

// applySynOptions folds the peer's handshake options into the TCB: MSS
// clamping, SACK permission, and window scaling — enabled only when both
// sides offered it (RFC 7323 §2.2).
func (c *Conn) applySynOptions(s seg) {
	if s.mss != 0 && uint32(s.mss) < c.mss {
		c.mss = uint32(s.mss)
	}
	c.peerSackOK = s.sackPerm && !c.opts.NoSack
	if s.wscale >= 0 {
		c.peerWScaleOK = true
		c.sndWndScale = uint8(s.wscale)
	} else {
		c.peerWScaleOK = false
		c.sndWndScale = 0
		c.rcvWndScale = 0
	}
}

// updateSndWnd applies a segment's window field under RFC 793's SND.WL1/WL2
// freshness rule: only a segment newer than the last window update (higher
// seq, or same seq with a no-older ack) may change snd.wnd. Without the
// rule, a reordered stale ACK can shrink — or worse, re-open — the send
// window the peer has since closed.
func (c *Conn) updateSndWnd(s seg) {
	if seqLT(c.snd.wl1, s.seq) || (c.snd.wl1 == s.seq && seqLE(c.snd.wl2, s.ack)) {
		c.snd.wnd = c.segWnd(s)
		c.snd.wl1 = s.seq
		c.snd.wl2 = s.ack
		return
	}
	c.stats.StaleWndUpdates++
}

// processAck advances snd.una, folds in SACK information, runs the recovery
// state machine and congestion control, and drives the close states forward.
func (c *Conn) processAck(t *sim.Task, s seg) {
	ack := s.ack
	// Compare against snd.max, not snd.nxt: after a timeout rewind the peer
	// may legitimately ack sequence space above snd.nxt (data it had buffered
	// out-of-order before the loss).
	if seqGT(ack, c.snd.max) {
		c.sendACK(t) // acks something never sent
		return
	}
	// Fold SACK blocks into the scoreboard first: both the duplicate and
	// new-data paths consult it.
	newSack := false
	if c.peerSackOK && s.nsack > 0 {
		c.stats.SacksRcvd++
		for i := uint8(0); i < s.nsack; i++ {
			b := s.sack[i]
			if seqLE(b.end, c.snd.una) || seqGT(b.end, c.snd.max) {
				continue // stale or absurd block
			}
			if seqLT(b.start, c.snd.una) {
				b.start = c.snd.una
			}
			if c.sb.add(b) {
				newSack = true
			}
		}
	}
	if seqLE(ack, c.snd.una) {
		c.staleAck(t, s, newSack)
		return
	}
	// New data acknowledged.
	acked := ack - c.snd.una
	c.sampleRTT(ack)
	c.backoff = 0 // forward progress: the path is passing traffic again
	// An ACK covering one byte past the remaining buffer can only be our
	// FIN — it was rewound by a timeout but had already reached the peer.
	if c.finQueued && !c.finSent && acked > uint32(len(c.sndBuf)) {
		c.finSent = true
	}
	// Slide the send buffer past acknowledged bytes (FIN occupies sequence
	// space beyond the buffer).
	dataAcked := acked
	if c.finSent && seqGT(ack, c.finSeq) {
		dataAcked--
	}
	if uint32(len(c.sndBuf)) >= dataAcked {
		c.sndBuf = c.sndBuf[dataAcked:]
	} else {
		c.sndBuf = nil
	}
	c.snd.una = ack
	if seqGT(c.snd.una, c.snd.nxt) {
		c.snd.nxt = c.snd.una // ack overtook a rewound snd.nxt
	}
	c.sb.advance(c.snd.una)
	c.updateSndWnd(s)
	if c.snd.wnd > 0 {
		c.disarmPersist()
	}
	// Recovery state machine and congestion control.
	switch c.recovery {
	case RecoveryFast:
		if seqGE(ack, c.snd.recover) {
			c.exitRecovery()
		} else {
			c.partialAck(t, acked)
		}
	case RecoveryLoss:
		if seqGE(ack, c.snd.recover) {
			c.recovery = RecoveryOpen
			c.snd.dupAcks = 0
		}
		c.cc.OnAck(c, acked) // slow-start regrowth continues during loss recovery
	default:
		c.snd.dupAcks = 0
		c.cc.OnAck(c, acked)
	}
	if c.snd.una == c.snd.nxt {
		c.disarmRexmit()
	} else {
		c.armRexmit()
	}
	// Close-state transitions on our FIN being acknowledged.
	finAcked := c.finSent && seqGT(ack, c.finSeq)
	switch c.state {
	case StateFinWait1:
		if finAcked {
			c.setState(StateFinWait2, segCause(s))
		}
	case StateClosing:
		if finAcked {
			c.enterTimeWait(segCause(s))
		}
	case StateLastAck:
		if finAcked {
			c.teardown(nil, segCause(s))
			return
		}
	}
	c.output(t)
}

// staleAck handles an acceptable segment whose ACK does not advance snd.una:
// window updates (under the WL1/WL2 rule) and duplicate-ACK counting.
func (c *Conn) staleAck(t *sim.Task, s seg, newSack bool) {
	wndBefore := c.snd.wnd
	// RFC 5681's duplicate-ACK test: no data, no window change, ack ==
	// snd.una with data outstanding. A segment carrying new SACK
	// information counts as a duplicate regardless of its window field
	// (RFC 6675): the SACK proves the receiver took a new segment.
	isDup := s.ack == c.snd.una && c.hasUnackedData() && len(s.payload) == 0 &&
		s.flags&(view.TCPSyn|view.TCPFin) == 0 &&
		(newSack || c.segWnd(s) == wndBefore)
	c.updateSndWnd(s)
	if wndBefore == 0 && c.snd.wnd > 0 {
		// Window update: leave persist mode and transmit.
		c.disarmPersist()
		c.output(t)
	}
	if !isDup {
		return
	}
	c.snd.dupAcks++
	c.stats.DupAcksRcvd++
	switch c.recovery {
	case RecoveryOpen:
		// RFC 6582's heuristic: don't re-enter recovery for dup ACKs of
		// sequence space below an earlier recovery point.
		if c.snd.dupAcks >= dupThresh && seqGE(c.snd.una, c.snd.recover) {
			c.enterFastRecovery(t)
		}
	case RecoveryFast:
		// Each further dup ACK means a segment left the network: inflate
		// the window (RFC 6582 step 3) and retransmit the next SACK hole.
		if !c.cc.OwnsCwnd() {
			c.setCwnd(c.snd.cwnd + c.mss)
		}
		c.sackRexmit(t)
		c.output(t)
	case RecoveryLoss:
		c.sackRexmit(t)
	}
}

// enterFastRecovery is RFC 6582 step 2: remember the recovery point,
// collapse ssthresh via the algorithm, retransmit the lost segment, and
// inflate cwnd by the three segments the dup ACKs proved have left the
// network.
func (c *Conn) enterFastRecovery(t *sim.Task) {
	c.stats.FastRexmits++
	c.mgr.stats.FastRexmits++
	c.stats.FastRecoveries++
	c.mgr.stats.FastRecoveries++
	c.recovery = RecoveryFast
	c.snd.recover = c.snd.max
	c.rexmitHint = c.snd.una
	c.snd.ssthresh = c.cc.SsthreshAfterLoss(c)
	c.cc.OnEnterRecovery(c)
	hole := uint32(0)
	if c.sb.n > 0 {
		// Bound the retransmission at the first SACKed range.
		if start, end, ok := c.sb.nextHole(c.snd.una); ok && start == c.snd.una {
			hole = end
		}
	}
	if n := c.retransmitHole(t, c.snd.una, hole); n > 0 {
		c.rexmitHint = c.snd.una + n
	}
	c.rescueSeq = c.snd.max
	if !c.cc.OwnsCwnd() {
		c.setCwnd(c.snd.ssthresh + dupThresh*c.mss)
	}
	c.armRexmit()
	c.output(t) // the inflated window may admit new data (RFC 6582 step 4)
}

// partialAck is RFC 6582 step 5: inside recovery, an ACK that advances
// snd.una without reaching the recovery point proves the next segment is
// also lost. Retransmit it, deflate the inflation by the amount acked (plus
// one MSS for the segment that left the network), and stay in recovery.
func (c *Conn) partialAck(t *sim.Task, acked uint32) {
	c.stats.PartialAcks++
	hole := uint32(0)
	if start, end, ok := c.sb.nextHole(c.snd.una); ok && start == c.snd.una {
		hole = end
	}
	if n := c.retransmitHole(t, c.snd.una, hole); n > 0 {
		c.rexmitHint = c.snd.una + n
	}
	c.rescueSeq = c.snd.max
	if !c.cc.OwnsCwnd() {
		w := c.snd.cwnd
		if acked >= w {
			w = c.mss
		} else {
			w -= acked
		}
		if acked >= c.mss {
			w += c.mss
		}
		c.setCwnd(w)
	}
	c.armRexmit()
	c.output(t)
}

// exitRecovery is RFC 6582 step 5's full-ACK arm: the recovery point is
// cumulatively acked. Deflate to min(ssthresh, flight+MSS) — the
// conservative option that avoids a burst after heavy inflation.
func (c *Conn) exitRecovery() {
	c.recovery = RecoveryOpen
	c.snd.dupAcks = 0
	c.rexmitHint = 0
	if !c.cc.OwnsCwnd() {
		w := c.flightSize() + c.mss
		if c.snd.ssthresh < w {
			w = c.snd.ssthresh
		}
		c.setCwnd(w)
	}
	c.cc.OnExitRecovery(c)
}

func (c *Conn) hasUnackedData() bool {
	return c.snd.nxt != c.snd.una
}

// processText delivers in-order payload, buffers out-of-order segments, and
// handles the peer's FIN.
func (c *Conn) processText(t *sim.Task, s seg) {
	switch c.state {
	case StateEstablished, StateFinWait1, StateFinWait2:
	default:
		return
	}
	fin := s.flags&view.TCPFin != 0
	if len(s.payload) == 0 && !fin {
		return
	}
	if seqGT(s.seq, c.rcv.nxt) {
		// Out of order: buffer and send an immediate duplicate ACK so
		// the sender's fast-retransmit counter advances.
		c.bufferOOO(s)
		c.sendACK(t)
		return
	}
	// Trim any already-received prefix.
	payload := s.payload
	if seqLT(s.seq, c.rcv.nxt) {
		skip := c.rcv.nxt - s.seq
		if skip >= uint32(len(payload)) {
			if !fin || seqGT(s.seq+s.segTextLen(), c.rcv.nxt) {
				// Possibly a bare retransmitted FIN; fall through.
				payload = nil
			} else {
				c.sendACK(t)
				return
			}
		} else {
			payload = payload[skip:]
		}
	}
	c.deliver(t, payload)
	if fin {
		c.rcv.nxt++ // the FIN occupies one sequence number
	}
	// Drain any contiguous out-of-order segments. A FIN consumed from the
	// out-of-order buffer gets a synthesized segment cause: the original
	// segment's flags are what drove the transition, not this one's.
	finCause := segCause(s)
	drainFin, drainSeq := c.drainOOO(t)
	if drainFin && !fin {
		finCause = Cause{Kind: CauseSegment, Flags: view.TCPFin | view.TCPAck, Seq: drainSeq, Ack: s.ack}
	}
	if fin || drainFin {
		c.peerFin(t, finCause)
		return
	}
	// ACK strategy: every second full segment immediately, else delayed.
	if uint32(len(s.payload)) >= c.mss {
		if c.ackTimer.Pending() {
			c.sendACK(t)
		} else {
			c.scheduleDelayedACK()
		}
	} else {
		c.scheduleDelayedACK()
	}
}

// deliver hands in-order bytes to the application, or queues them (shrinking
// the advertised window) while delivery is paused.
func (c *Conn) deliver(t *sim.Task, payload []byte) {
	if len(payload) == 0 {
		return
	}
	c.rcv.nxt += uint32(len(payload))
	c.stats.BytesRcvd += uint64(len(payload))
	if c.paused {
		c.rcvBuf = append(c.rcvBuf, payload...)
		c.updateRcvWnd()
		return
	}
	if c.opts.OnRecv != nil {
		c.opts.OnRecv(t, c, payload)
	}
}

// bufferOOO stores an out-of-order segment (bounded; drops beyond the cap).
func (c *Conn) bufferOOO(s seg) {
	if len(c.ooo) >= maxOOOSegs {
		c.stats.OOODropped++
		return
	}
	for _, o := range c.ooo {
		if o.seq == s.seq {
			return // duplicate
		}
	}
	c.stats.OOOBuffered++
	c.lastOOOSeq = s.seq
	p := append([]byte(nil), s.payload...)
	c.ooo = append(c.ooo, oooSeg{seq: s.seq, payload: p, fin: s.flags&view.TCPFin != 0})
	sort.Slice(c.ooo, func(i, j int) bool { return seqLT(c.ooo[i].seq, c.ooo[j].seq) })
}

// drainOOO delivers buffered segments that have become contiguous; it
// reports whether a buffered FIN was consumed and, if so, that FIN's
// sequence number (for the audit cause).
func (c *Conn) drainOOO(t *sim.Task) (bool, uint32) {
	fin := false
	var finSeq uint32
	for len(c.ooo) > 0 {
		o := c.ooo[0]
		if seqGT(o.seq, c.rcv.nxt) {
			break
		}
		c.ooo = c.ooo[1:]
		payload := o.payload
		if seqLT(o.seq, c.rcv.nxt) {
			skip := c.rcv.nxt - o.seq
			if skip >= uint32(len(payload)) {
				payload = nil
			} else {
				payload = payload[skip:]
			}
		}
		c.deliver(t, payload)
		if o.fin {
			c.rcv.nxt++
			fin = true
			finSeq = o.seq
		}
	}
	return fin, finSeq
}

// peerFin runs the state transitions for a received FIN and acks it.
func (c *Conn) peerFin(t *sim.Task, cause Cause) {
	if c.opts.OnPeerFin != nil {
		c.opts.OnPeerFin(t, c)
	}
	switch c.state {
	case StateEstablished:
		c.setState(StateCloseWait, cause)
	case StateFinWait1:
		// Our FIN not yet acked: simultaneous close.
		c.setState(StateClosing, cause)
	case StateFinWait2:
		c.sendACK(t)
		c.enterTimeWait(cause)
		return
	}
	c.sendACK(t)
}
