// NewReno (RFC 6582) congestion control with RFC 3465 appropriate byte
// counting. The recovery state machine itself — partial-ACK retransmit,
// window inflation/deflation — lives in the connection; this type supplies
// the growth and reduction policy.
package tcp

import "plexus/internal/sim"

func init() { RegisterCC("newreno", newNewReno) }

type newReno struct {
	// acc is the appropriate-byte-counting accumulator: bytes acked but not
	// yet converted into cwnd growth.
	acc uint32
}

func newNewReno() CongestionControl { return &newReno{} }

func (*newReno) Name() string                       { return "newreno" }
func (*newReno) Init(*Conn)                         {}
func (*newReno) OwnsCwnd() bool                     { return false }
func (*newReno) OnRTTSample(*Conn, sim.Time)        {}
func (*newReno) PacingDelay(*Conn, uint32) sim.Time { return 0 }

// OnAck grows cwnd from bytes acknowledged (RFC 3465): slow start below
// ssthresh with L=2·SMSS, then one MSS per cwnd's worth of acked bytes in
// congestion avoidance. Credit carries across the ssthresh crossing, so a
// stretch ACK neither overshoots ssthresh nor over-credits avoidance.
func (r *newReno) OnAck(c *Conn, acked uint32) {
	r.acc += acked
	slowStartGrow(c, &r.acc)
	if c.snd.cwnd >= c.snd.ssthresh {
		for r.acc >= c.snd.cwnd {
			r.acc -= c.snd.cwnd
			c.setCwnd(c.snd.cwnd + c.mss)
		}
	}
}

// SsthreshAfterLoss is RFC 5681's max(FlightSize/2, 2·SMSS).
func (*newReno) SsthreshAfterLoss(c *Conn) uint32 {
	half := c.flightSize() / 2
	if half < 2*c.mss {
		half = 2 * c.mss
	}
	return half
}

func (r *newReno) OnEnterRecovery(*Conn) { r.acc = 0 }
func (r *newReno) OnExitRecovery(*Conn)  { r.acc = 0 }
func (r *newReno) OnRTO(*Conn)           { r.acc = 0 }
