package tcp

// This file is the Eventer half of the conformance-audit plane: every state
// transition of every connection is emitted as a typed Transition through a
// pluggable TransitionSink. The Sinker half (ring buffer, JSONL writer,
// assertion sink) and the RFC 793 legality checker live in internal/audit;
// keeping only the event type and the interface here means the transport
// never imports its own auditors.
//
// The emission path is zero-alloc by construction: Transition and Cause are
// value types, every string in them is precomputed (host name at manager
// construction, cause details as package constants), and a nil sink costs one
// branch per state write.

import (
	"plexus/internal/sim"
	"plexus/internal/view"
)

// CauseKind classifies what drove a state transition.
type CauseKind uint8

const (
	// CauseNone marks a transition with no recorded cause (never emitted by
	// this implementation; checkers treat it as illegal).
	CauseNone CauseKind = iota
	// CauseSegment is an arriving segment; Flags/Seq/Ack describe it.
	CauseSegment
	// CauseTimer is a protocol timer expiry; Detail names the timer.
	CauseTimer
	// CauseUser is an application call; Detail names the call.
	CauseUser
)

func (k CauseKind) String() string {
	switch k {
	case CauseSegment:
		return "segment"
	case CauseTimer:
		return "timer"
	case CauseUser:
		return "user"
	default:
		return "none"
	}
}

// Cause detail constants. Checker rules match on these exact strings, so
// emission sites must use the constants, never ad-hoc literals.
const (
	// User calls.
	CauseConnect = "connect" // active open
	CauseListen  = "listen"  // passive open
	CauseClose   = "close"   // orderly close
	CauseAbort   = "abort"   // RST-and-destroy
	CauseForce   = "force"   // ForceState test hook — never legal
	// Timers.
	CauseRTO  = "rto"  // retransmission/handshake timeout exhausted
	Cause2MSL = "2msl" // TIME-WAIT expiry
)

// Cause records why a transition happened: the arriving segment's flags and
// sequence numbers, the timer that fired, or the user call that was made.
type Cause struct {
	Kind   CauseKind
	Flags  uint8  // segment causes: TCP flags of the triggering segment
	Seq    uint32 // segment causes: sequence number
	Ack    uint32 // segment causes: acknowledgment number
	Detail string // timer/user causes: one of the constants above
}

// segCause builds a segment cause from a parsed segment.
func segCause(s seg) Cause {
	return Cause{Kind: CauseSegment, Flags: s.flags, Seq: s.seq, Ack: s.ack}
}

// userCause builds a user-call cause.
func userCause(detail string) Cause { return Cause{Kind: CauseUser, Detail: detail} }

// timerCause builds a timer cause.
func timerCause(detail string) Cause { return Cause{Kind: CauseTimer, Detail: detail} }

// Transition is one typed state-transition event: the connection 4-tuple, the
// edge taken, what caused it, and when (simulated time). All fields are
// values; sinks may retain events freely.
type Transition struct {
	At         sim.Time
	Host       string
	LocalAddr  view.IP4
	LocalPort  uint16
	RemoteAddr view.IP4
	RemotePort uint16
	Old, New   State
	Cause      Cause
}

// TransitionSink receives every state transition of every connection under
// one Manager. Implementations must not allocate per event in steady state
// (the ring sink and checker in internal/audit are the canonical sinks) and
// must not call back into the connection synchronously.
type TransitionSink interface {
	Transition(ev Transition)
}

// SetAuditSink installs (or clears, with nil) the manager's transition sink.
// Installing mid-run is safe; only transitions after the call are seen.
func (m *Manager) SetAuditSink(s TransitionSink) { m.audit = s }

// AuditSink returns the installed transition sink, or nil.
func (m *Manager) AuditSink() TransitionSink { return m.audit }

// setState performs a state transition and emits it to the audit sink. Every
// write of c.state outside construction must go through here — the audit
// plane's completeness depends on it.
func (c *Conn) setState(next State, cause Cause) {
	old := c.state
	c.state = next
	if s := c.mgr.audit; s != nil && old != next {
		s.Transition(Transition{
			At:         c.mgr.sim.Now(),
			Host:       c.mgr.hostName,
			LocalAddr:  c.mgr.ip.Addr(),
			LocalPort:  c.localPort,
			RemoteAddr: c.remoteAddr,
			RemotePort: c.remotePort,
			Old:        old,
			New:        next,
			Cause:      cause,
		})
	}
}

// ForceState is a test hook: it rewrites the connection state directly,
// emitting a transition with the "force" user cause — which no legality rule
// accepts, so a conformance checker downstream must flag it. It exists to
// prove the audit plane catches illegal transitions with full context.
func (c *Conn) ForceState(next State) {
	c.setState(next, userCause(CauseForce))
}
