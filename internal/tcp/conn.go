package tcp

import (
	"fmt"

	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// State is a TCP connection state (RFC 793 §3.2).
type State int

// Connection states (RFC 793 §3.2). StateListen appears on passive opens:
// the listener clones its LISTEN state into each new TCB, so the audited
// lifecycle of an accepted connection is CLOSED→LISTEN→SYN-RECEIVED→…,
// matching the RFC's state diagram verbatim.
const (
	StateClosed State = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait1
	StateFinWait2
	StateCloseWait
	StateClosing
	StateLastAck
	StateTimeWait
	// NumStates bounds fixed per-state tables (the conformance checker's
	// legality matrix).
	NumStates
)

var stateNames = [...]string{
	"CLOSED", "LISTEN", "SYN-SENT", "SYN-RECEIVED", "ESTABLISHED",
	"FIN-WAIT-1", "FIN-WAIT-2", "CLOSE-WAIT", "CLOSING", "LAST-ACK",
	"TIME-WAIT",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Protocol timing constants.
const (
	// minRTO/maxRTO bound the retransmission timeout. The floor is the
	// RFC 6298 conservative 1s; stacks tuned for low-latency recovery may
	// lower it per host via Config.MinRTO (Linux uses 200ms).
	minRTO = 1 * sim.Second
	maxRTO = 64 * sim.Second
	// initialRTO applies before any RTT sample (RFC 6298 suggests 1s;
	// 1995-era stacks used ~1.5s).
	initialRTO = 1 * sim.Second
	// delayedAckDelay is the standard 200ms delayed-ACK clock.
	delayedAckDelay = 200 * sim.Millisecond
	// MSL is the maximum segment lifetime; TIME-WAIT lasts 2*MSL. Exported
	// so tests and tools can compute when a TIME-WAIT TCB must unwind.
	MSL = 30 * sim.Second
	msl = MSL
	// defaultRcvWnd is the receive buffer/advertised window.
	defaultRcvWnd = 64*1024 - 1
	// dupThresh triggers fast retransmit.
	dupThresh = 3
	// maxSynRetries bounds connection-establishment attempts.
	maxSynRetries = 5
	// maxOOOSegs bounds buffered out-of-order segments per connection.
	maxOOOSegs = 64
	// persistInterval is the base zero-window probe interval.
	persistInterval = 2 * sim.Second
	// maxPersistInterval caps persist backoff.
	maxPersistInterval = 60 * sim.Second
)

// ConnOptions configure a connection's application-visible behaviour.
type ConnOptions struct {
	// OnRecv delivers in-order payload bytes as they arrive. The slice is
	// owned by the callee.
	OnRecv func(t *sim.Task, c *Conn, data []byte)
	// OnEstablished fires when the handshake completes.
	OnEstablished func(t *sim.Task, c *Conn)
	// OnClose fires when the connection fully terminates; err is nil for
	// an orderly close, ErrReset for a RST.
	OnClose func(c *Conn, err error)
	// OnPeerFin fires when the peer's FIN arrives (end of their stream).
	OnPeerFin func(t *sim.Task, c *Conn)
	// Ephemeral marks the segment handler EPHEMERAL.
	Ephemeral bool
	// RcvWnd overrides the advertised window (default 64KB-1). Values above
	// 64KB-1 negotiate window scaling (RFC 7323) on the handshake.
	RcvWnd uint32
	// CC selects the congestion-control algorithm by registry name
	// ("newreno", "cubic", "bbr"); empty uses the manager's default.
	CC string
	// NoSack withholds the SACK-permitted option from this end's SYN (or
	// SYN|ACK), so neither side sends SACK blocks and loss recovery runs on
	// cumulative ACKs alone — the knob for comparing recovery with and
	// without the scoreboard.
	NoSack bool
}

type sndState struct {
	iss uint32
	una uint32
	nxt uint32
	max uint32 // highest sequence ever sent + 1 (snd.nxt may rewind below it on RTO)
	wnd uint32 // peer's advertised window, scaled
	// wl1/wl2 are the seq/ack of the segment the window was last taken
	// from: RFC 793's update-legality rule, so a stale reordered ACK can
	// neither shrink nor re-open the send window.
	wl1 uint32
	wl2 uint32
	// congestion control
	cwnd     uint32
	ssthresh uint32
	dupAcks  int
	// recover is RFC 6582's recovery point: snd.max at loss detection. A
	// cumulative ACK at or past it ends the recovery episode.
	recover uint32
}

type rcvState struct {
	irs uint32
	nxt uint32
	wnd uint32
}

type oooSeg struct {
	seq     uint32
	payload []byte
	fin     bool
}

// ConnStats counts per-connection activity.
type ConnStats struct {
	BytesSent    uint64
	BytesRcvd    uint64
	SegsSent     uint64
	SegsRcvd     uint64
	Retransmits  uint64
	FastRexmits  uint64
	RTOExpiries  uint64
	DupAcksRcvd  uint64
	OOOBuffered  uint64
	OOODropped   uint64
	WindowProbes uint64 // zero-window persist probes sent
	// FastRecoveries counts NewReno fast-recovery episodes entered.
	FastRecoveries uint64
	// PartialAcks counts RFC 6582 partial ACKs handled inside recovery.
	PartialAcks uint64
	// SackRexmits counts scoreboard-driven selective retransmissions.
	SackRexmits uint64
	// SacksSent/SacksRcvd count segments carrying SACK blocks.
	SacksSent uint64
	SacksRcvd uint64
	// StaleWndUpdates counts window updates refused by the WL1/WL2
	// freshness rule — each one is a reordered segment that would have
	// corrupted the send window before the rule was enforced.
	StaleWndUpdates uint64
}

// Conn is one TCP connection (a TCB plus its guard binding).
type Conn struct {
	mgr  *Manager
	opts ConnOptions

	localPort  uint16
	remoteAddr view.IP4
	remotePort uint16

	state State
	snd   sndState
	rcv   rcvState
	mss   uint32

	// Congestion control (policy) and loss-recovery phase (mechanism).
	cc       CongestionControl
	ccName   string
	recovery RecoveryState
	// sb is the SACK scoreboard; rexmitHint is the next selective-
	// retransmit candidate within the current recovery episode; rescueSeq
	// is snd.max when the hole at snd.una was last retransmitted — SACKed
	// data above it proves that retransmission lost (the links are FIFO,
	// so later data overtaking it can only mean a drop).
	sb         scoreboard
	rexmitHint uint32
	rescueSeq  uint32
	// Negotiated options: peerSackOK gates SACK blocks both ways;
	// peerWScaleOK records the peer offered window scaling; sndWndScale
	// shifts the peer's window field, rcvWndScale ours.
	peerSackOK   bool
	peerWScaleOK bool
	sndWndScale  uint8
	rcvWndScale  uint8
	// optBuf is the scratch buffer outgoing option blocks are built in.
	optBuf [sackOptsLen]byte
	// lastOOOSeq is the most recently buffered out-of-order sequence — the
	// block RFC 2018 requires first in outgoing SACK options.
	lastOOOSeq uint32

	// sndBuf holds bytes from snd.una onward (unacked + unsent).
	sndBuf []byte
	// finQueued marks that the application closed its send side; the FIN
	// goes out after the buffer drains.
	finQueued bool
	finSeq    uint32 // sequence of our FIN, valid once sent
	finSent   bool

	ooo []oooSeg

	// Receiver-side flow control: when the application pauses delivery,
	// in-order data accumulates in rcvBuf and the advertised window
	// shrinks toward zero.
	rcvBuf    []byte
	paused    bool
	rcvWndCap uint32

	// timers
	rexmitTimer  sim.Timer
	ackTimer     sim.Timer
	twTimer      sim.Timer
	persistTimer sim.Timer
	persistShift uint
	// Pacing (BBR-style senders): no data segment leaves before paceNext;
	// when the gate closes, paceTimer re-runs output at the release time.
	paceTimer sim.Timer
	paceNext  sim.Time
	// RTT estimation (Jacobson), Karn's rule via rttSeq/rttStart.
	srtt     sim.Time
	rttvar   sim.Time
	rto      sim.Time
	rttSeq   uint32
	rttStart sim.Time
	rttValid bool
	backoff  uint

	synRetries int
	binding    *event.Binding
	listener   *Listener
	stats      ConnStats
	closedErr  error
	dead       bool
	// probeTag is the telemetry probe's opaque per-connection slot (cached
	// series handles); see telemetry.go.
	probeTag any
}

// newConn allocates a TCB and installs its guard (exact 4-tuple match — the
// anti-snooping edge) on TCP.PacketRecv.
func (m *Manager) newConn(localPort uint16, remote view.IP4, remotePort uint16, opts ConnOptions) *Conn {
	c := &Conn{
		mgr:        m,
		opts:       opts,
		localPort:  localPort,
		remoteAddr: remote,
		remotePort: remotePort,
		mss:        uint32(m.MSS()),
		rto:        initialRTO,
	}
	c.rcv.wnd = defaultRcvWnd
	if opts.RcvWnd != 0 {
		c.rcv.wnd = opts.RcvWnd
	}
	c.rcvWndCap = c.rcv.wnd
	// Provisional receive-window scale; zeroed if the peer doesn't
	// negotiate RFC 7323 scaling on the handshake.
	c.rcvWndScale = wndScaleFor(c.rcvWndCap)
	c.snd.iss = m.iss()
	c.snd.una = c.snd.iss
	c.snd.nxt = c.snd.iss
	c.snd.max = c.snd.iss
	c.snd.recover = c.snd.iss
	// Initial window of two segments: a lone first segment would sit
	// behind the receiver's delayed-ACK clock for 200ms.
	c.snd.cwnd = 2 * c.mss
	c.snd.ssthresh = 65535
	name := opts.CC
	if name == "" {
		name = m.defaultCC
	}
	c.cc = newCC(name)
	c.ccName = c.cc.Name()
	c.cc.Init(c)
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		s, ok := parseSeg(pkt)
		return ok && s.dstPort == c.localPort && s.srcPort == c.remotePort && s.src == c.remoteAddr
	}
	h := event.Handler{
		Name:      fmt.Sprintf("tcp.conn:%d-%v:%d", localPort, remote, remotePort),
		Fn:        c.segArrives,
		Ephemeral: true,
	}
	b, err := m.disp.Install(RecvEvent, guard, h, 0)
	if err != nil {
		// RecvEvent is always declared by New; install can only fail on
		// a nil handler, which cannot happen here.
		panic(err)
	}
	c.binding = b
	m.conns[connKey{localPort, remote, remotePort}] = c
	m.connList = append(m.connList, c)
	return c
}

// Connect performs an active open to dst:dstPort.
func (m *Manager) Connect(t *sim.Task, dst view.IP4, dstPort uint16, opts ConnOptions) (*Conn, error) {
	port, err := m.allocPort()
	if err != nil {
		return nil, err
	}
	c := m.newConn(port, dst, dstPort, opts)
	c.setState(StateSynSent, userCause(CauseConnect))
	c.sendSYN(t)
	return c, nil
}

// State returns the connection state.
func (c *Conn) State() State { return c.state }

// Stats returns a snapshot of per-connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// LocalPort returns the local port.
func (c *Conn) LocalPort() uint16 { return c.localPort }

// RemoteAddr returns the peer address and port.
func (c *Conn) RemoteAddr() (view.IP4, uint16) { return c.remoteAddr, c.remotePort }

// RTO returns the current retransmission timeout (tests observe backoff).
func (c *Conn) RTO() sim.Time { return c.rto }

// SendBufBytes returns how many bytes sit in the send buffer (unacked+unsent).
func (c *Conn) SendBufBytes() int { return len(c.sndBuf) }

// --- output ---

// synOpts builds the option block for an outgoing SYN or SYN|ACK. A SYN
// offers everything; a SYN|ACK echoes only what the peer offered (RFC 2018
// §2, RFC 7323 §2.2).
func (c *Conn) synOpts(echo bool) []byte {
	sackPerm := !c.opts.NoSack
	wscale := int8(c.rcvWndScale)
	if echo {
		sackPerm = sackPerm && c.peerSackOK
		if !c.peerWScaleOK {
			wscale = -1
		}
	}
	return putSynOptions(c.optBuf[:], uint16(c.mss), wscale, sackPerm)
}

func (c *Conn) sendSYN(t *sim.Task) {
	c.snd.nxt = c.snd.iss + 1
	c.bumpSndMax()
	c.stats.SegsSent++
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.iss, 0, view.TCPSyn, c.rcv.wnd, c.synOpts(false), nil)
	c.armRexmit()
	c.startRTT(c.snd.iss)
}

func (c *Conn) sendSYNACK(t *sim.Task) {
	c.snd.nxt = c.snd.iss + 1
	c.bumpSndMax()
	c.stats.SegsSent++
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.iss, c.rcv.nxt, view.TCPSyn|view.TCPAck, c.rcv.wnd, c.synOpts(true), nil)
	c.armRexmit()
}

// wireRcvWnd is the window value advertised on non-SYN segments: the real
// window right-shifted by the negotiated receive scale (sendSegment clamps
// the result to the 16-bit field).
func (c *Conn) wireRcvWnd() uint32 { return c.rcv.wnd >> c.rcvWndScale }

// segWnd is the peer's effective window from a segment: the 16-bit field
// shifted by the negotiated scale, except on SYNs, which are never scaled
// (RFC 7323 §2.2).
func (c *Conn) segWnd(s seg) uint32 {
	if s.flags&view.TCPSyn != 0 {
		return s.wnd
	}
	return s.wnd << c.sndWndScale
}

// sendACK emits a bare acknowledgment now, cancelling any delayed ACK. It
// carries SACK blocks whenever out-of-order data is buffered.
func (c *Conn) sendACK(t *sim.Task) {
	c.ackTimer.Stop()
	c.stats.SegsSent++
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.nxt, c.rcv.nxt, view.TCPAck, c.wireRcvWnd(), c.ackOpts(), nil)
}

// scheduleDelayedACK arms the 200ms ACK clock if not already pending.
func (c *Conn) scheduleDelayedACK() {
	if c.ackTimer.Pending() {
		return
	}
	c.ackTimer = c.mgr.sim.After(delayedAckDelay, "tcp-delack", func() {
		if c.dead {
			return
		}
		c.mgr.stats.DelayedAcks++
		c.mgr.cpu.Submit(sim.PrioKernel, "tcp-delack", func(task *sim.Task) {
			if !c.dead {
				c.sendACK(task)
			}
		})
	})
}

// Send appends data to the connection's stream. It is accepted immediately
// into the send buffer and transmitted as the windows allow.
func (c *Conn) Send(t *sim.Task, data []byte) error {
	switch c.state {
	case StateEstablished, StateCloseWait, StateSynSent, StateSynRcvd:
	default:
		return ErrClosed
	}
	if c.finQueued {
		return ErrClosed
	}
	c.sndBuf = append(c.sndBuf, data...)
	c.output(t)
	return nil
}

// Close ends the send side: a FIN is queued after any buffered data.
func (c *Conn) Close(t *sim.Task) {
	switch c.state {
	case StateClosed, StateTimeWait, StateLastAck, StateClosing, StateFinWait1, StateFinWait2:
		return
	}
	if c.finQueued {
		return
	}
	c.finQueued = true
	switch c.state {
	case StateEstablished, StateSynRcvd:
		c.setState(StateFinWait1, userCause(CauseClose))
	case StateCloseWait:
		c.setState(StateLastAck, userCause(CauseClose))
	case StateSynSent:
		c.teardown(nil, userCause(CauseClose))
		return
	}
	c.output(t)
}

// Abort sends a RST and destroys the connection.
func (c *Conn) Abort(t *sim.Task) {
	if c.dead {
		return
	}
	c.mgr.stats.RSTsSent++
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.nxt, c.rcv.nxt, view.TCPRst|view.TCPAck, 0, nil, nil)
	c.teardown(ErrReset, userCause(CauseAbort))
}

// usableWindow returns how many new bytes the windows currently permit.
func (c *Conn) usableWindow() uint32 {
	wnd := c.snd.wnd
	if c.snd.cwnd < wnd {
		wnd = c.snd.cwnd
	}
	inFlight := c.snd.nxt - c.snd.una
	if inFlight >= wnd {
		return 0
	}
	return wnd - inFlight
}

// output transmits as much buffered data (and a queued FIN) as the windows
// allow. This is the single transmission path for new data.
func (c *Conn) output(t *sim.Task) {
	if c.state != StateEstablished && c.state != StateCloseWait &&
		c.state != StateFinWait1 && c.state != StateLastAck {
		return
	}
	for {
		offset := c.snd.nxt - c.snd.una // bytes of sndBuf already in flight
		// The FIN occupies sequence space beyond the buffer; once it (or
		// all buffered data) is in flight there is nothing new to send.
		if offset >= uint32(len(c.sndBuf)) {
			break
		}
		avail := uint32(len(c.sndBuf)) - offset
		if c.usableWindow() == 0 {
			break
		}
		n := avail
		if w := c.usableWindow(); n > w {
			n = w
		}
		if n > c.mss {
			n = c.mss
		}
		// Sender-side silly-window avoidance: when the window (not the
		// buffer) limits us to a sub-MSS runt, wait for an ACK instead
		// of sending it — 65535 mod MSS would otherwise generate a runt
		// every window's worth of data.
		if n < c.mss && n < avail {
			break
		}
		// Pacing gate (BBR-style senders): hold the segment until the pace
		// clock releases it; the timer re-enters output at that instant.
		if c.paceGate(n) {
			break
		}
		payload := c.sndBuf[offset : offset+n]
		flags := uint8(view.TCPAck)
		// PSH on the last segment of the buffered data.
		if offset+n == uint32(len(c.sndBuf)) {
			flags |= view.TCPPsh
		}
		seq := c.snd.nxt
		c.snd.nxt += n
		c.bumpSndMax()
		c.stats.SegsSent++
		c.stats.BytesSent += uint64(n)
		c.ackTimer.Stop() // data segment carries the ACK
		c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, seq, c.rcv.nxt, flags, c.wireRcvWnd(), nil, payload)
		c.startRTT(seq)
		c.armRexmit()
	}
	// Stalled with data waiting and either a closed window or nothing in
	// flight to draw further ACKs (the sender-SWS small-window case):
	// enter persist mode so a silent peer cannot deadlock the connection.
	if c.snd.nxt-c.snd.una < uint32(len(c.sndBuf)) &&
		(c.snd.wnd == 0 || c.snd.nxt == c.snd.una) {
		c.armPersist()
	}
	// Send the FIN once the buffer has fully drained into the window.
	if c.finQueued && !c.finSent && c.snd.nxt == c.snd.una+uint32(len(c.sndBuf)) {
		c.finSeq = c.snd.nxt
		c.snd.nxt++
		c.bumpSndMax()
		c.finSent = true
		c.stats.SegsSent++
		c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.finSeq, c.rcv.nxt, view.TCPFin|view.TCPAck, c.wireRcvWnd(), nil, nil)
		c.armRexmit()
	}
}

// paceGate enforces the congestion controller's pacing schedule: it returns
// true when the next send must wait, arming a timer to resume output at the
// release time. Unpaced algorithms (PacingDelay 0) never close the gate.
func (c *Conn) paceGate(n uint32) bool {
	d := c.cc.PacingDelay(c, n)
	if d == 0 {
		return false
	}
	now := c.mgr.sim.Now()
	if now < c.paceNext {
		c.armPace(c.paceNext - now)
		return true
	}
	c.paceNext = now + d
	return false
}

func (c *Conn) armPace(d sim.Time) {
	if c.paceTimer.Pending() {
		return
	}
	c.paceTimer = c.mgr.sim.After(d, "tcp-pace", func() {
		if c.dead {
			return
		}
		c.mgr.cpu.Submit(sim.PrioKernel, "tcp-pace", func(task *sim.Task) {
			if !c.dead {
				c.output(task)
			}
		})
	})
}

// --- timers & RTT ---

func (c *Conn) startRTT(seq uint32) {
	if c.rttValid {
		return // a sample is already being timed
	}
	c.rttValid = true
	c.rttSeq = seq
	c.rttStart = c.mgr.sim.Now()
}

// sampleRTT applies Jacobson's estimator when an ACK covers the timed
// segment; Karn's rule is honoured by cancelRTT on retransmission.
func (c *Conn) sampleRTT(ack uint32) {
	if !c.rttValid || !seqGT(ack, c.rttSeq) {
		return
	}
	c.rttValid = false
	m := c.mgr.sim.Now() - c.rttStart
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		diff := m - c.srtt
		if diff < 0 {
			diff = -diff
		}
		c.rttvar += (diff - c.rttvar) / 4
		c.srtt += (m - c.srtt) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	floor := c.mgr.minRTO
	if floor == 0 {
		floor = minRTO
	}
	if c.rto < floor {
		c.rto = floor
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.backoff = 0
	if c.cc != nil {
		c.cc.OnRTTSample(c, m)
	}
}

func (c *Conn) cancelRTT() { c.rttValid = false }

func (c *Conn) armRexmit() {
	c.rexmitTimer.Stop()
	rto := c.rto << c.backoff
	if rto > maxRTO {
		rto = maxRTO
	}
	c.rexmitTimer = c.mgr.sim.After(rto, "tcp-rexmit", func() {
		if c.dead {
			return
		}
		c.mgr.cpu.Submit(sim.PrioKernel, "tcp-rexmit", func(task *sim.Task) {
			if !c.dead {
				c.onRexmitTimeout(task)
			}
		})
	})
}

func (c *Conn) disarmRexmit() {
	c.rexmitTimer.Stop()
	c.rexmitTimer = sim.Timer{}
}

// onRexmitTimeout retransmits the oldest unacknowledged data with exponential
// backoff and collapses the congestion window (RFC 5681 timeout behaviour).
func (c *Conn) onRexmitTimeout(t *sim.Task) {
	if c.snd.una == c.snd.nxt && !c.finSent {
		return // everything acked in the meantime
	}
	c.stats.RTOExpiries++
	c.mgr.stats.Retransmits++
	c.backoff++
	c.cancelRTT() // Karn: never time retransmitted segments
	switch c.state {
	case StateSynSent:
		c.synRetries++
		if c.synRetries > maxSynRetries {
			c.teardown(fmt.Errorf("tcp: connect to %v:%d timed out", c.remoteAddr, c.remotePort), timerCause(CauseRTO))
			return
		}
		c.stats.Retransmits++
		c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.iss, 0, view.TCPSyn, c.rcv.wnd, c.synOpts(false), nil)
		c.armRexmit()
		return
	case StateSynRcvd:
		c.synRetries++
		if c.synRetries > maxSynRetries {
			c.teardown(fmt.Errorf("tcp: handshake with %v:%d timed out", c.remoteAddr, c.remotePort), timerCause(CauseRTO))
			return
		}
		c.stats.Retransmits++
		c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.iss, c.rcv.nxt, view.TCPSyn|view.TCPAck, c.rcv.wnd, c.synOpts(true), nil)
		c.armRexmit()
		return
	}
	// Collapse the window (RFC 5681 timeout behaviour): the algorithm picks
	// the new ssthresh; cwnd drops to one MSS unless the algorithm owns it
	// (BBR applies packet conservation in OnRTO instead). The scoreboard is
	// discarded — after a timeout its view of the receiver is stale.
	c.snd.ssthresh = c.cc.SsthreshAfterLoss(c)
	c.recovery = RecoveryLoss
	c.snd.recover = c.snd.max
	c.snd.dupAcks = 0
	c.sb.reset()
	c.rexmitHint = 0
	if !c.cc.OwnsCwnd() {
		c.setCwnd(c.mss)
	}
	c.cc.OnRTO(c)
	if n := c.retransmitOldest(t); n > 0 {
		// Go-back-N: everything past the retransmitted segment predates
		// the timeout and is presumed lost. Rewinding snd.nxt lets ACK
		// progress reopen usableWindow so output() resends the rest under
		// slow start, instead of paying one backed-off RTO per segment.
		// snd.max remembers the true high-water mark so ACKs for rewound
		// sequence space (data the receiver had buffered) stay acceptable.
		c.snd.nxt = c.snd.una + n
		if c.finSent && seqLE(c.snd.nxt, c.finSeq) {
			c.finSent = false // FIN rewound too; output() re-sends it at drain
		}
	}
	c.armRexmit()
}

// bumpSndMax records the high-water mark of sent sequence space.
func (c *Conn) bumpSndMax() {
	if seqGT(c.snd.nxt, c.snd.max) {
		c.snd.max = c.snd.nxt
	}
}

// retransmitOldest resends one segment starting at snd.una and reports how
// many data bytes it carried (0 for a FIN-only retransmission).
func (c *Conn) retransmitOldest(t *sim.Task) uint32 {
	return c.retransmitHole(t, c.snd.una, 0)
}

// retransmitHole resends one MSS-bounded segment starting at start, bounded
// by end when nonzero (the next SACKed range — no point resending bytes the
// receiver already holds). It reports the data bytes carried (0 for a
// FIN-only retransmission) and cancels any in-progress RTT sample (Karn's
// rule: retransmitted sequence space must never be timed).
func (c *Conn) retransmitHole(t *sim.Task, start, end uint32) uint32 {
	if seqLT(start, c.snd.una) {
		start = c.snd.una
	}
	offset := start - c.snd.una
	buflen := uint32(len(c.sndBuf))
	if offset >= buflen {
		// Only the FIN lives beyond the buffer.
		if c.finSent && seqLE(c.snd.una, c.finSeq) && seqLE(start, c.finSeq) {
			c.stats.Retransmits++
			c.cancelRTT()
			c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.finSeq, c.rcv.nxt, view.TCPFin|view.TCPAck, c.wireRcvWnd(), nil, nil)
		}
		return 0
	}
	n := buflen - offset
	if end != 0 && seqLT(start, end) {
		if span := end - start; n > span {
			n = span
		}
	}
	if n > c.mss {
		n = c.mss
	}
	c.stats.Retransmits++
	c.cancelRTT()
	payload := c.sndBuf[offset : offset+n]
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, start, c.rcv.nxt, view.TCPAck|view.TCPPsh, c.wireRcvWnd(), nil, payload)
	return n
}

// sackRexmit retransmits the next scoreboard hole during recovery (the
// selective-repeat half of RFC 6675, simplified to one hole per ACK event).
// rexmitHint walks forward through the holes; once it passes the last one, a
// rescue retransmission of the front hole is allowed only when the peer has
// SACKed data sent after that hole's last retransmission — on FIFO links the
// overtake proves the retransmission was lost, so recovery repairs it from
// the continuing dup-ACK stream instead of stalling until the RTO.
func (c *Conn) sackRexmit(t *sim.Task) {
	if c.sb.n == 0 {
		return
	}
	hint := c.rexmitHint
	if seqLT(hint, c.snd.una) {
		hint = c.snd.una
	}
	start, end, ok := c.sb.nextHole(hint)
	if !ok && seqGT(hint, c.snd.una) && seqGT(c.sb.r[c.sb.n-1].end, c.rescueSeq) {
		start, end, ok = c.sb.nextHole(c.snd.una)
	}
	if !ok {
		return
	}
	if n := c.retransmitHole(t, start, end); n > 0 {
		c.rexmitHint = start + n
		if start == c.snd.una {
			c.rescueSeq = c.snd.max
		}
		c.stats.SackRexmits++
		c.mgr.stats.SackRexmits++
		c.armRexmit()
	}
}

// --- teardown ---

// teardown destroys the TCB: timers stopped, guard uninstalled, demux entry
// removed. err is reported through OnClose (nil = orderly); cause is what the
// audit plane records for the final transition to CLOSED.
func (c *Conn) teardown(err error, cause Cause) {
	if c.dead {
		return
	}
	c.dead = true
	c.closedErr = err
	c.setState(StateClosed, cause)
	c.disarmRexmit()
	c.ackTimer.Stop()
	c.twTimer.Stop()
	c.paceTimer.Stop()
	c.disarmPersist()
	c.mgr.disp.Uninstall(c.binding)
	delete(c.mgr.conns, connKey{c.localPort, c.remoteAddr, c.remotePort})
	for i, lc := range c.mgr.connList {
		if lc == c {
			c.mgr.connList = append(c.mgr.connList[:i], c.mgr.connList[i+1:]...)
			break
		}
	}
	if c.opts.OnClose != nil {
		c.opts.OnClose(c, err)
	}
}

// enterTimeWait schedules the final teardown after 2*MSL. cause is the
// segment that drove the transition into TIME-WAIT.
func (c *Conn) enterTimeWait(cause Cause) {
	c.setState(StateTimeWait, cause)
	c.disarmRexmit()
	c.rearmTimeWait()
}

// rearmTimeWait (re)starts the 2*MSL timer. A retransmitted FIN arriving in
// TIME-WAIT restarts it (RFC 793 p.73); only its expiry may leave the state.
func (c *Conn) rearmTimeWait() {
	c.twTimer.Stop()
	c.twTimer = c.mgr.sim.After(2*msl, "tcp-timewait", func() {
		if !c.dead {
			c.teardown(nil, timerCause(Cause2MSL))
		}
	})
}

// --- receiver flow control and the persist timer ---

// updateRcvWnd recomputes the advertised window from buffered, undelivered
// data.
func (c *Conn) updateRcvWnd() {
	used := uint32(len(c.rcvBuf))
	if used >= c.rcvWndCap {
		c.rcv.wnd = 0
	} else {
		c.rcv.wnd = c.rcvWndCap - used
	}
}

// SetRecvPaused pauses or resumes delivery to the application. While paused,
// in-order data queues in the connection's receive buffer and the advertised
// window closes toward zero — the receiver-side backpressure that forces the
// peer into zero-window persist mode. Resuming flushes the buffer to OnRecv
// and sends a window update.
func (c *Conn) SetRecvPaused(t *sim.Task, paused bool) {
	if c.paused == paused || c.dead {
		c.paused = paused
		return
	}
	c.paused = paused
	if paused {
		return
	}
	// Resume: flush buffered bytes to the application and reopen the
	// window with an immediate ACK (window update).
	data := c.rcvBuf
	c.rcvBuf = nil
	c.updateRcvWnd()
	if len(data) > 0 && c.opts.OnRecv != nil {
		c.opts.OnRecv(t, c, data)
	}
	c.sendACK(t)
}

// RecvBuffered reports bytes held for a paused application.
func (c *Conn) RecvBuffered() int { return len(c.rcvBuf) }

// armPersist starts (or continues) the zero-window probe timer.
func (c *Conn) armPersist() {
	if c.persistTimer.Pending() {
		return
	}
	d := persistInterval << c.persistShift
	if d > maxPersistInterval {
		d = maxPersistInterval
	}
	c.persistTimer = c.mgr.sim.After(d, "tcp-persist", func() {
		if c.dead {
			return
		}
		c.mgr.cpu.Submit(sim.PrioKernel, "tcp-persist", func(task *sim.Task) {
			if c.dead {
				return
			}
			c.sendWindowProbe(task)
		})
	})
}

func (c *Conn) disarmPersist() {
	c.persistTimer.Stop()
	c.persistTimer = sim.Timer{}
	c.persistShift = 0
}

// sendWindowProbe forces output while persisting (RFC 1122 4.2.2.17 and
// BSD's t_force): if the window permits any bytes, send them despite
// sender-SWS avoidance; against a fully closed window, send one byte beyond
// it. Either way the peer answers with an ACK carrying its current window,
// so a lost window update cannot deadlock the connection.
func (c *Conn) sendWindowProbe(t *sim.Task) {
	offset := c.snd.nxt - c.snd.una
	if offset >= uint32(len(c.sndBuf)) {
		return // nothing left to probe with
	}
	avail := uint32(len(c.sndBuf)) - offset
	if w := c.usableWindow(); w >= c.mss || w >= avail {
		// The window reopened; transmit normally.
		c.output(t)
		return
	}
	n := c.usableWindow()
	inWindow := n > 0
	if n == 0 {
		n = 1 // true zero-window probe: one byte beyond the window
	}
	if n > avail {
		n = avail
	}
	if n > c.mss {
		n = c.mss
	}
	c.stats.WindowProbes++
	c.stats.SegsSent++
	payload := c.sndBuf[offset : offset+n]
	c.mgr.sendSegment(t, c.localPort, c.remoteAddr, c.remotePort, c.snd.nxt, c.rcv.nxt, view.TCPAck|view.TCPPsh, c.wireRcvWnd(), nil, payload)
	if inWindow {
		// A forced in-window send is real transmission: it advances
		// snd.nxt and is covered by the retransmission timer.
		c.snd.nxt += n
		c.bumpSndMax()
		c.stats.BytesSent += uint64(n)
		c.armRexmit()
	}
	if c.persistShift < 5 {
		c.persistShift++
	}
	c.armPersist()
}
