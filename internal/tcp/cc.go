// The pluggable congestion-control plane. The connection owns the loss
// *detection* machinery — dup-ACK counting, the SACK scoreboard, NewReno's
// recovery bookkeeping (RFC 6582), the RTO — and delegates the *policy*
// questions (how fast may cwnd grow, what does it collapse to on loss,
// should sends be paced) to a CongestionControl instance selected per
// connection from a registry. Algorithms that compute their own window from
// a model of the path (BBR) report OwnsCwnd and opt out of the
// inflation/deflation arithmetic entirely.
package tcp

import (
	"sort"

	"plexus/internal/sim"
)

// RecoveryState is the sender's loss-recovery phase, orthogonal to the RFC
// 793 connection state and exported for the audit and telemetry planes.
type RecoveryState uint8

const (
	// RecoveryOpen is normal operation: no loss suspected.
	RecoveryOpen RecoveryState = iota
	// RecoveryFast is NewReno/SACK fast recovery (RFC 6582): entered on the
	// third duplicate ACK, left when snd.recover is cumulatively acked.
	RecoveryFast
	// RecoveryLoss is RTO-driven recovery: the window collapsed and the
	// sender is re-filling the pipe under slow start.
	RecoveryLoss
)

var recoveryNames = [...]string{"OPEN", "FAST-RECOVERY", "LOSS"}

func (r RecoveryState) String() string {
	if int(r) < len(recoveryNames) {
		return recoveryNames[r]
	}
	return "RECOVERY(?)"
}

// maxCwnd caps congestion-window growth: 16 MB is beyond any
// bandwidth-delay product the simulator models and keeps every cwnd
// computation far from uint32 wraparound.
const maxCwnd = 1 << 24

// CongestionControl is one congestion-control algorithm bound to one
// connection. Implementations are per-connection (they may hold state) and
// must not allocate on the OnAck path — the zero-alloc pin covers it.
type CongestionControl interface {
	// Name is the registry name the algorithm was created under.
	Name() string
	// Init runs once when the connection binds the algorithm, before any
	// segment flows; the connection's MSS may still be renegotiated by the
	// handshake.
	Init(c *Conn)
	// OnAck credits cwnd for acked bytes of new data (called outside fast
	// recovery; during RTO recovery it regrows the collapsed window).
	OnAck(c *Conn, acked uint32)
	// SsthreshAfterLoss returns the new slow-start threshold on a loss
	// event (fast retransmit or RTO).
	SsthreshAfterLoss(c *Conn) uint32
	// OnEnterRecovery and OnExitRecovery bracket NewReno fast recovery.
	OnEnterRecovery(c *Conn)
	OnExitRecovery(c *Conn)
	// OnRTO reacts to a retransmission timeout. Algorithms that own cwnd
	// must collapse it here; for the rest the connection has already set
	// cwnd to one MSS.
	OnRTO(c *Conn)
	// OnRTTSample observes each valid (Karn-filtered) RTT measurement.
	OnRTTSample(c *Conn, rtt sim.Time)
	// PacingDelay returns the gap to impose after transmitting bytes, or 0
	// for unpaced (ACK-clocked) operation. Paced sends ride the simulator's
	// timer wheel.
	PacingDelay(c *Conn, bytes uint32) sim.Time
	// OwnsCwnd reports that the algorithm computes cwnd directly and the
	// connection must skip the standard collapse/inflation/deflation moves.
	OwnsCwnd() bool
}

// DefaultCC is the algorithm used when none is configured.
const DefaultCC = "newreno"

var ccRegistry = map[string]func() CongestionControl{}

// RegisterCC adds an algorithm factory under name; later registrations
// replace earlier ones. The built-ins register themselves from init.
func RegisterCC(name string, factory func() CongestionControl) {
	ccRegistry[name] = factory
}

// CCNames lists the registered algorithms, sorted.
func CCNames() []string {
	names := make([]string, 0, len(ccRegistry))
	for n := range ccRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// newCC instantiates name, falling back to NewReno for "" or unknown names
// (a misspelled algorithm must degrade to standard behaviour, not crash a
// simulation mid-sweep).
func newCC(name string) CongestionControl {
	if f, ok := ccRegistry[name]; ok {
		return f()
	}
	return ccRegistry[DefaultCC]()
}

// setCwnd applies a congestion-window value under the global clamps: never
// below one MSS (the connection must always be able to probe), never above
// maxCwnd (uint32 arithmetic stays safe).
func (c *Conn) setCwnd(w uint32) {
	if w > maxCwnd {
		w = maxCwnd
	}
	if w < c.mss {
		w = c.mss
	}
	c.snd.cwnd = w
}

// flightSize is RFC 5681's FlightSize: sequence space sent but not yet
// cumulatively acknowledged.
func (c *Conn) flightSize() uint32 { return c.snd.nxt - c.snd.una }

// slowStartGrow implements RFC 3465 appropriate byte counting below
// ssthresh with L=2·SMSS: per ACK, cwnd grows by the bytes actually
// acknowledged, capped at 2·MSS, and clamped exactly at the ssthresh
// crossing so a single ACK cannot overshoot into what should be congestion
// avoidance. Credit truncated by the crossing clamp is left in *acc for the
// caller's avoidance phase; credit beyond the L cap is discarded — banking
// it would let a stretch ACK buy the whole burst's worth of exponential
// growth at once, which is exactly what the cap exists to prevent.
func slowStartGrow(c *Conn, acc *uint32) {
	if c.snd.cwnd >= c.snd.ssthresh || *acc == 0 {
		return
	}
	inc := *acc
	if l := 2 * c.mss; inc > l {
		inc = l
	}
	if room := c.snd.ssthresh - c.snd.cwnd; inc > room {
		inc = room
	}
	c.setCwnd(c.snd.cwnd + inc)
	*acc -= inc
	if c.snd.cwnd < c.snd.ssthresh {
		*acc = 0
	}
}
