package tcp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSeqComparisonsBasic(t *testing.T) {
	cases := []struct {
		a, b           uint32
		lt, le, gt, ge bool
	}{
		{0, 0, false, true, false, true},
		{0, 1, true, true, false, false},
		{1, 0, false, false, true, true},
		// Wraparound: 0xFFFFFFFF is just before 0.
		{0xFFFFFFFF, 0, true, true, false, false},
		{0, 0xFFFFFFFF, false, false, true, true},
		{0xFFFFFF00, 0x00000100, true, true, false, false},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt || seqLE(c.a, c.b) != c.le ||
			seqGT(c.a, c.b) != c.gt || seqGE(c.a, c.b) != c.ge {
			t.Errorf("comparisons wrong for (%#x, %#x)", c.a, c.b)
		}
	}
}

func TestSeqMax(t *testing.T) {
	if seqMax(5, 9) != 9 || seqMax(9, 5) != 9 {
		t.Error("seqMax basic")
	}
	if seqMax(0xFFFFFFFF, 1) != 1 {
		t.Error("seqMax should respect wraparound (1 is after 0xFFFFFFFF)")
	}
}

// Properties of sequence arithmetic, valid for values within half the space.
func TestQuickSeqProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}

	// Antisymmetry: a < b ⇒ !(b < a); and trichotomy with equality.
	if err := quick.Check(func(a uint32, deltaRaw uint32) bool {
		delta := deltaRaw % (1 << 30) // stay within half the space
		b := a + delta
		switch {
		case delta == 0:
			return !seqLT(a, b) && !seqGT(a, b) && seqLE(a, b) && seqGE(a, b)
		default:
			return seqLT(a, b) && seqGT(b, a) && !seqLT(b, a) && seqLE(a, b) && !seqGE(a, b)
		}
	}, cfg); err != nil {
		t.Error(err)
	}

	// Shift invariance: comparisons survive adding any offset to both.
	if err := quick.Check(func(a, off uint32, deltaRaw uint32) bool {
		delta := deltaRaw%(1<<30) + 1
		b := a + delta
		return seqLT(a, b) == seqLT(a+off, b+off)
	}, cfg); err != nil {
		t.Error(err)
	}

	// seqMax returns one of its arguments and is ≥ both.
	if err := quick.Check(func(a uint32, deltaRaw uint32) bool {
		b := a + deltaRaw%(1<<30)
		m := seqMax(a, b)
		return (m == a || m == b) && seqGE(m, a) && seqGE(m, b)
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestSegTextLen(t *testing.T) {
	cases := []struct {
		payload int
		flags   uint8
		want    uint32
	}{
		{0, 0, 0},
		{10, 0, 10},
		{0, 0x02 /*SYN*/, 1},
		{0, 0x01 /*FIN*/, 1},
		{5, 0x03 /*SYN|FIN*/, 7},
	}
	for _, c := range cases {
		s := seg{payload: make([]byte, c.payload), flags: c.flags}
		if got := s.segTextLen(); got != c.want {
			t.Errorf("segTextLen(payload=%d flags=%#x) = %d, want %d", c.payload, c.flags, got, c.want)
		}
	}
}

func TestStateString(t *testing.T) {
	for s := StateClosed; s <= StateTimeWait; s++ {
		if s.String() == "" {
			t.Errorf("state %d has empty name", int(s))
		}
	}
	if StateEstablished.String() != "ESTABLISHED" {
		t.Error("ESTABLISHED name wrong")
	}
	if State(99).String() != "State(99)" {
		t.Error("unknown state format wrong")
	}
}
