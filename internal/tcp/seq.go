package tcp

// Sequence-space arithmetic (RFC 793 §3.3): comparisons are modulo 2^32,
// meaningful for values within half the space of each other.

// seqLT reports a < b in sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

// seqGT reports a > b in sequence space.
func seqGT(a, b uint32) bool { return int32(a-b) > 0 }

// seqGE reports a >= b in sequence space.
func seqGE(a, b uint32) bool { return int32(a-b) >= 0 }

// seqMax returns the later of a and b in sequence space.
func seqMax(a, b uint32) uint32 {
	if seqGT(a, b) {
		return a
	}
	return b
}
