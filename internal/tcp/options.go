// TCP option wire format (RFC 793 §3.1, RFC 2018, RFC 7323): parsing for
// incoming segments and fixed-buffer builders for outgoing ones. Every
// builder writes into a caller-supplied array slice and keeps the option
// block 32-bit aligned, so the send path never allocates for options.
package tcp

import "encoding/binary"

// TCP option kinds.
const (
	optEnd      = 0 // end of option list
	optNOP      = 1 // padding
	optMSS      = 2 // maximum segment size (SYN only), length 4
	optWScale   = 3 // window scale (SYN only, RFC 7323), length 3
	optSackPerm = 4 // SACK permitted (SYN only, RFC 2018), length 2
	optSack     = 5 // SACK blocks, length 2+8n
)

// maxWndScale caps the window-scale shift (RFC 7323 §2.3).
const maxWndScale = 14

// maxParsedSackBlocks bounds SACK blocks taken from one segment; RFC 2018
// allows at most 4 when no timestamp option is present.
const maxParsedSackBlocks = 4

// parseOptions walks the option block between the fixed header and the data
// offset, filling the segment's option fields. Malformed options end the walk
// (the fixed header was already checksummed; a bad option list only costs the
// options themselves).
func parseOptions(b []byte, s *seg) {
	for i := 0; i < len(b); {
		kind := b[i]
		if kind == optEnd {
			return
		}
		if kind == optNOP {
			i++
			continue
		}
		if i+1 >= len(b) {
			return
		}
		l := int(b[i+1])
		if l < 2 || i+l > len(b) {
			return
		}
		switch kind {
		case optMSS:
			if l == 4 {
				s.mss = binary.BigEndian.Uint16(b[i+2:])
			}
		case optWScale:
			if l == 3 {
				sh := b[i+2]
				if sh > maxWndScale {
					sh = maxWndScale
				}
				s.wscale = int8(sh)
			}
		case optSackPerm:
			if l == 2 {
				s.sackPerm = true
			}
		case optSack:
			for j := 0; j < (l-2)/8 && int(s.nsack) < maxParsedSackBlocks; j++ {
				o := i + 2 + 8*j
				blk := sackBlock{
					start: binary.BigEndian.Uint32(b[o:]),
					end:   binary.BigEndian.Uint32(b[o+4:]),
				}
				if seqLT(blk.start, blk.end) {
					s.sack[s.nsack] = blk
					s.nsack++
				}
			}
		}
		i += l
	}
}

// synOptsLen is the worst-case SYN option block: MSS(4) + NOP NOP
// SACK-permitted(2) + NOP WScale(3).
const synOptsLen = 12

// putSynOptions writes the handshake options into buf and returns the slice
// used. wscale < 0 omits the window-scale option.
func putSynOptions(buf []byte, mss uint16, wscale int8, sackPerm bool) []byte {
	n := 0
	buf[n] = optMSS
	buf[n+1] = 4
	binary.BigEndian.PutUint16(buf[n+2:], mss)
	n += 4
	if sackPerm {
		buf[n] = optNOP
		buf[n+1] = optNOP
		buf[n+2] = optSackPerm
		buf[n+3] = 2
		n += 4
	}
	if wscale >= 0 {
		buf[n] = optNOP
		buf[n+1] = optWScale
		buf[n+2] = 3
		buf[n+3] = uint8(wscale)
		n += 4
	}
	return buf[:n]
}

// maxSentSackBlocks bounds SACK blocks on outgoing ACKs: three fit alongside
// the two alignment NOPs inside a 40-byte option field, and RFC 2018's
// guidance is that the first (most recent) blocks carry nearly all the value.
const maxSentSackBlocks = 3

// sackOptsLen is the buffer a full SACK option needs: NOP NOP + kind/len +
// 3 blocks of 8 bytes.
const sackOptsLen = 4 + 8*maxSentSackBlocks

// putSackOption writes NOP NOP SACK(blocks) into buf and returns the slice
// used (nil when blocks is empty).
func putSackOption(buf []byte, blocks []sackBlock) []byte {
	if len(blocks) == 0 {
		return nil
	}
	if len(blocks) > maxSentSackBlocks {
		blocks = blocks[:maxSentSackBlocks]
	}
	buf[0] = optNOP
	buf[1] = optNOP
	buf[2] = optSack
	buf[3] = uint8(2 + 8*len(blocks))
	n := 4
	for _, b := range blocks {
		binary.BigEndian.PutUint32(buf[n:], b.start)
		binary.BigEndian.PutUint32(buf[n+4:], b.end)
		n += 8
	}
	return buf[:n]
}

// wndScaleFor returns the smallest shift that lets cap fit a 16-bit window
// field, bounded by RFC 7323's maximum of 14.
func wndScaleFor(cap uint32) uint8 {
	s := uint8(0)
	for cap>>s > 65535 && s < maxWndScale {
		s++
	}
	return s
}
