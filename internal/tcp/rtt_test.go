package tcp

// White-box tests of the RTT estimator: Jacobson's smoothing and Karn's
// rule operate on a bare Conn with a clock, no network required. The
// end-to-end consequences (backoff under a link blackout, fast retransmit)
// are tested in internal/plexus against the fault-injection plane.

import (
	"testing"

	"plexus/internal/sim"
)

func rttConn(s *sim.Sim) *Conn {
	return &Conn{mgr: &Manager{sim: s}, rto: initialRTO}
}

func TestSampleRTTSeedsEstimator(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	c.startRTT(100)
	s.At(50*sim.Millisecond, "ack", func() { c.sampleRTT(101) })
	s.Run()
	if c.srtt != 50*sim.Millisecond {
		t.Errorf("srtt = %v, want 50ms", c.srtt)
	}
	if c.rttvar != 25*sim.Millisecond {
		t.Errorf("rttvar = %v, want 25ms (first sample: m/2)", c.rttvar)
	}
	// srtt + 4*rttvar = 150ms, below the floor.
	if c.rto != minRTO {
		t.Errorf("rto = %v, want the %v floor", c.rto, minRTO)
	}
}

func TestSampleRTTIgnoresUncoveringAck(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	c.startRTT(100)
	s.At(30*sim.Millisecond, "dup-ack", func() { c.sampleRTT(100) }) // does not cover seq 100
	s.At(80*sim.Millisecond, "ack", func() { c.sampleRTT(101) })
	s.Run()
	// The sample must time the full 80ms, not be consumed at 30ms.
	if c.srtt != 80*sim.Millisecond {
		t.Errorf("srtt = %v, want 80ms", c.srtt)
	}
}

// Karn's rule: once a segment is retransmitted, its ACK is ambiguous — it
// may acknowledge either transmission — so the in-flight sample must be
// discarded, never fed to the estimator.
func TestKarnDiscardsRetransmittedSample(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	c.startRTT(100)
	s.At(20*sim.Millisecond, "rexmit", func() { c.cancelRTT() }) // what onRexmitTimeout does
	s.At(70*sim.Millisecond, "ack", func() { c.sampleRTT(101) })
	s.Run()
	if c.srtt != 0 {
		t.Errorf("srtt = %v; ambiguous ACK was sampled despite Karn's rule", c.srtt)
	}
	if c.rto != initialRTO {
		t.Errorf("rto = %v, want untouched %v", c.rto, initialRTO)
	}
}

func TestSampleRTTOnePendingSampleAtATime(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	c.startRTT(100)
	s.At(10*sim.Millisecond, "second-start", func() { c.startRTT(500) }) // ignored: one timer
	s.At(40*sim.Millisecond, "ack", func() { c.sampleRTT(501) })
	s.Run()
	// The original seq-100 timing survives: 40ms, not 30ms.
	if c.srtt != 40*sim.Millisecond {
		t.Errorf("srtt = %v, want 40ms", c.srtt)
	}
}

func TestValidSampleResetsBackoff(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	c.backoff = 4 // as if four straight RTO expiries
	c.startRTT(100)
	s.At(25*sim.Millisecond, "ack", func() { c.sampleRTT(101) })
	s.Run()
	if c.backoff != 0 {
		t.Errorf("backoff = %d after a clean sample, want 0", c.backoff)
	}
}

func TestJacobsonConvergesTowardStableRTT(t *testing.T) {
	s := sim.New(1)
	c := rttConn(s)
	// Feed 20 identical 400ms samples; srtt must converge to 400ms and
	// rttvar decay toward zero (rto then sits at the 1s floor... only if
	// srtt+4*rttvar < minRTO; with srtt 400ms that holds once rttvar <
	// 150ms).
	seq := uint32(100)
	at := sim.Time(0)
	for i := 0; i < 20; i++ {
		sendAt, ackSeq := at, seq+1
		startSeq := seq
		s.At(sendAt, "send", func() { c.startRTT(startSeq) })
		s.At(sendAt+400*sim.Millisecond, "ack", func() { c.sampleRTT(ackSeq) })
		at += sim.Second
		seq++
	}
	s.Run()
	if d := c.srtt - 400*sim.Millisecond; d < -10*sim.Millisecond || d > 10*sim.Millisecond {
		t.Errorf("srtt = %v, want ≈400ms", c.srtt)
	}
	if c.rttvar > 60*sim.Millisecond {
		t.Errorf("rttvar = %v did not decay on a stable path", c.rttvar)
	}
	if c.rto < minRTO || c.rto > 700*sim.Millisecond && c.rto != minRTO {
		t.Errorf("rto = %v out of expected range", c.rto)
	}
}
