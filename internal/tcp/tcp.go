// Package tcp implements the TCP node of the protocol graph: a protocol
// manager that validates segments and demultiplexes them to connections via
// guards, and a connection state machine with sliding windows, Jacobson/Karn
// retransmission timing, slow start, congestion avoidance, and fast
// retransmit.
//
// The paper's Plexus TCP came from a commercial vendor (§4.2); this one is
// written from scratch, but the architecture point is preserved: the same
// transport code runs on both OS personalities, demultiplexed by guards in
// the same protocol graph, and multiple implementations of TCP can coexist
// for different port sets (§3.1 "TCP-standard vs TCP-special") because each
// connection's reach is defined entirely by its guard.
package tcp

import (
	"errors"
	"fmt"

	"plexus/internal/event"
	"plexus/internal/icmp"
	"plexus/internal/ip"
	"plexus/internal/mbuf"
	"plexus/internal/osmodel"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// RecvEvent carries IP datagrams (proto TCP, IP header intact) that passed
// the TCP layer's validation; connection and listener guards demux on it.
const RecvEvent event.Name = "TCP.PacketRecv"

// Errors.
var (
	// ErrPortInUse reports a bind conflict.
	ErrPortInUse = errors.New("tcp: port in use")
	// ErrClosed reports use of a closed connection.
	ErrClosed = errors.New("tcp: connection closed")
	// ErrReset reports a connection terminated by RST.
	ErrReset = errors.New("tcp: connection reset by peer")
)

// Stats counts manager-level activity.
type Stats struct {
	SegsIn      uint64
	SegsOut     uint64
	BadChecksum uint64
	BadHeader   uint64
	NoMatch     uint64 // segments for no connection (RST territory)
	RSTsSent    uint64
	// RSTsRejected counts RSTs dropped by sequence validation (RFC 793
	// p.37): out-of-window in synchronized states, not acknowledging our
	// SYN in SYN-SENT, or arriving in TIME-WAIT (RFC 1337).
	RSTsRejected uint64
	Retransmits  uint64
	FastRexmits  uint64
	// FastRecoveries counts NewReno fast-recovery episodes across all
	// connections; SackRexmits counts scoreboard-driven selective
	// retransmissions.
	FastRecoveries uint64
	SackRexmits    uint64
	DelayedAcks    uint64
	// TimeWaitRearms counts retransmitted FINs arriving in TIME-WAIT that
	// were re-ACKed and restarted the 2·MSL timer (RFC 793 p.73).
	TimeWaitRearms uint64
	// TimeWaitQuietDrops counts in-window segments TIME-WAIT deliberately
	// answered with silence — the quiet period that keeps two TIME-WAIT
	// ends of a simultaneous close from trading ACKs forever.
	TimeWaitQuietDrops uint64
}

// Manager is the TCP protocol manager for one host.
type Manager struct {
	sim   *sim.Sim
	ip    *ip.Layer
	disp  *event.Dispatcher
	raise event.Raiser
	// recvRef is the resolved RecvEvent handle for the per-segment path.
	recvRef *event.Ref
	cpu     *sim.CPU
	pool    *mbuf.Pool
	costs   osmodel.Costs

	listeners map[uint16]*Listener
	conns     map[connKey]*Conn
	// connList mirrors conns in creation order: the deterministic,
	// allocation-free iteration the telemetry probe samples through (map
	// order would vary run to run).
	connList []*Conn
	// claimed ports are owned by another implementation of TCP installed
	// in the graph (paper §3.1: TCP-standard's guard processes all TCP
	// packets but those destined for TCP-special); segments to or from
	// them are invisible to this manager.
	claimed  map[uint16]bool
	nextPort uint16
	issSeed  uint32
	stats    Stats
	// defaultCC names the congestion-control algorithm for connections
	// that don't pick one ("" = NewReno).
	defaultCC string
	// minRTO is the retransmission-timeout floor for all connections.
	minRTO sim.Time

	// audit receives every connection state transition; hostName is the
	// precomputed host label stamped into each event (never formatted on
	// the emission path).
	audit    TransitionSink
	hostName string

	requireEphemeral bool
}

type connKey struct {
	localPort  uint16
	remoteAddr view.IP4
	remotePort uint16
}

// Config wires a Manager.
type Config struct {
	Sim   *sim.Sim
	IP    *ip.Layer
	Disp  *event.Dispatcher
	Raise event.Raiser
	CPU   *sim.CPU
	Pool  *mbuf.Pool
	Costs osmodel.Costs
	// RequireEphemeral rejects non-EPHEMERAL connection handlers (§3.3).
	RequireEphemeral bool
	// Audit receives every connection state transition (nil = disabled;
	// SetAuditSink can install one later).
	Audit TransitionSink
	// DefaultCC names the congestion-control algorithm for connections that
	// don't select one via ConnOptions.CC ("" = NewReno).
	DefaultCC string
	// MinRTO overrides the retransmission-timeout floor (0 = the RFC 6298
	// conservative 1s). Modern low-latency stacks use ~200ms.
	MinRTO sim.Time
}

// New creates the manager, declares TCP.PacketRecv, and installs the TCP
// layer's guard/handler on IP.PacketRecv.
func New(cfg Config) (*Manager, error) {
	m := &Manager{
		sim:              cfg.Sim,
		ip:               cfg.IP,
		disp:             cfg.Disp,
		raise:            cfg.Raise,
		cpu:              cfg.CPU,
		pool:             cfg.Pool,
		costs:            cfg.Costs,
		listeners:        make(map[uint16]*Listener),
		conns:            make(map[connKey]*Conn),
		claimed:          make(map[uint16]bool),
		nextPort:         32768,
		issSeed:          uint32(cfg.Sim.Rand().Int63()),
		audit:            cfg.Audit,
		defaultCC:        cfg.DefaultCC,
		minRTO:           cfg.MinRTO,
		requireEphemeral: cfg.RequireEphemeral,
	}
	if m.minRTO == 0 {
		m.minRTO = minRTO
	}
	if cfg.CPU != nil {
		m.hostName = cfg.CPU.Name()
	}
	if err := cfg.Disp.Declare(RecvEvent, event.Options{RequireEphemeral: cfg.RequireEphemeral}); err != nil {
		return nil, err
	}
	m.recvRef = cfg.Disp.Ref(RecvEvent)
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		if !icmp.ProtoGuard(view.IPProtoTCP)(t, pkt) {
			return false
		}
		if len(m.claimed) == 0 {
			return true
		}
		s, ok := parseSeg(pkt)
		return ok && !m.claimed[s.dstPort] && !m.claimed[s.srcPort]
	}
	_, err := cfg.Disp.Install(ip.RecvEvent, guard,
		event.Ephemeral("tcp.input", m.input), 0)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// Stats returns a snapshot of counters.
func (m *Manager) Stats() Stats { return m.stats }

// NumConns reports how many TCBs are live (any state before full teardown).
// TIME-WAIT holds its slot — and its port — until the 2*MSL timer frees it.
func (m *Manager) NumConns() int { return len(m.conns) }

// Claim cedes a port to another TCP implementation in the graph: this
// manager's guard stops matching segments to or from it. It fails if the
// port is in local use.
func (m *Manager) Claim(port uint16) error {
	if _, used := m.listeners[port]; used {
		return fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	for k := range m.conns {
		if k.localPort == port {
			return fmt.Errorf("%w: %d", ErrPortInUse, port)
		}
	}
	m.claimed[port] = true
	return nil
}

// Unclaim returns a claimed port to this manager.
func (m *Manager) Unclaim(port uint16) { delete(m.claimed, port) }

// LocalAddr returns the host's IP address.
func (m *Manager) LocalAddr() view.IP4 { return m.ip.Addr() }

// MSS returns the maximum segment size for the interface.
func (m *Manager) MSS() int { return m.ip.MTU() - view.IPv4MinHdrLen - view.TCPMinHdrLen }

// input validates a TCP segment and raises TCP.PacketRecv; segments matching
// no guard draw an RST.
func (m *Manager) input(t *sim.Task, pkt *mbuf.Mbuf) {
	t.ChargeProf(sim.ProfProto, "tcp", m.costs.TCPProc)
	if hdr := pkt.Hdr(); hdr != nil {
		t.Hop(hdr.Span, "tcp", "recv", hdr.Len)
	}
	m.stats.SegsIn++
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	hl := ipv.HdrLen()
	segLen := ipv.TotalLen() - hl
	if segLen < view.TCPMinHdrLen {
		m.stats.BadHeader++
		pkt.Free()
		return
	}
	t.ChargeBytesProf(sim.ProfChecksum, "tcp", segLen, m.costs.ChecksumPerByte)
	a := view.PseudoHeader(ipv.Src(), ipv.Dst(), view.IPProtoTCP, segLen)
	if err := ip.ChecksumChain(&a, pkt, hl, segLen); err != nil || a.Fold() != 0 {
		m.stats.BadChecksum++
		pkt.Free()
		return
	}
	if m.raise.RaiseRef(t, m.recvRef, pkt) == 0 {
		m.stats.NoMatch++
		m.sendRSTFor(t, pkt)
		pkt.Free()
	}
}

// seg is a parsed incoming segment.
type seg struct {
	src     view.IP4
	dst     view.IP4
	srcPort uint16
	dstPort uint16
	seq     uint32
	ack     uint32
	flags   uint8
	wnd     uint32
	payload []byte
	// Parsed options. mss is 0 when absent; wscale is -1 when absent.
	mss      uint16
	wscale   int8
	sackPerm bool
	nsack    uint8
	sack     [maxParsedSackBlocks]sackBlock
}

// parseSeg extracts the segment from an IP datagram packet.
func parseSeg(pkt *mbuf.Mbuf) (seg, bool) {
	ipv, err := view.IPv4(pkt.Bytes())
	if err != nil {
		return seg{}, false
	}
	hl := ipv.HdrLen()
	segLen := ipv.TotalLen() - hl
	raw, err := pkt.CopyData(hl, segLen)
	if err != nil {
		return seg{}, false
	}
	tv, err := view.TCP(raw)
	if err != nil {
		return seg{}, false
	}
	dataOff := tv.DataOff()
	if dataOff < view.TCPMinHdrLen || dataOff > len(raw) {
		return seg{}, false
	}
	s := seg{
		src:     ipv.Src(),
		dst:     ipv.Dst(),
		srcPort: tv.SrcPort(),
		dstPort: tv.DstPort(),
		seq:     tv.Seq(),
		ack:     tv.Ack(),
		flags:   tv.Flags(),
		wnd:     uint32(tv.Window()),
		payload: raw[dataOff:],
		wscale:  -1,
	}
	if dataOff > view.TCPMinHdrLen {
		parseOptions(raw[view.TCPMinHdrLen:dataOff], &s)
	}
	return s, true
}

// segTextLen returns the sequence-space length of a segment (payload plus
// SYN/FIN flags).
func (s seg) segTextLen() uint32 {
	n := uint32(len(s.payload))
	if s.flags&view.TCPSyn != 0 {
		n++
	}
	if s.flags&view.TCPFin != 0 {
		n++
	}
	return n
}

// sendRSTFor answers a segment that matched nothing (RFC 793 p.36).
func (m *Manager) sendRSTFor(t *sim.Task, pkt *mbuf.Mbuf) {
	s, ok := parseSeg(pkt)
	if !ok || s.flags&view.TCPRst != 0 {
		return
	}
	m.stats.RSTsSent++
	if s.flags&view.TCPAck != 0 {
		m.sendSegment(t, s.dstPort, s.src, s.srcPort, s.ack, 0, view.TCPRst, 0, nil, nil)
	} else {
		m.sendSegment(t, s.dstPort, s.src, s.srcPort, 0, s.seq+s.segTextLen(), view.TCPRst|view.TCPAck, 0, nil, nil)
	}
}

// sendSegment builds and transmits one TCP segment. opts is the option
// block (must be 32-bit aligned and at most 40 bytes); the data offset is
// derived from its length.
func (m *Manager) sendSegment(t *sim.Task, srcPort uint16, dst view.IP4, dstPort uint16, seqNum, ackNum uint32, flags uint8, wnd uint32, opts, payload []byte) {
	m.stats.SegsOut++
	hdrLen := view.TCPMinHdrLen + len(opts)
	buf := make([]byte, hdrLen+len(payload))
	copy(buf[view.TCPMinHdrLen:], opts)
	copy(buf[hdrLen:], payload)
	raw := buf
	raw[12] = uint8(hdrLen/4) << 4
	v, err := view.TCP(raw)
	if err != nil {
		return
	}
	v.SetSrcPort(srcPort)
	v.SetDstPort(dstPort)
	v.SetSeq(seqNum)
	v.SetAck(ackNum)
	v.SetFlags(flags)
	if wnd > 65535 {
		wnd = 65535
	}
	v.SetWindow(uint16(wnd))
	v.SetChecksum(0)
	a := view.PseudoHeader(m.ip.Addr(), dst, view.IPProtoTCP, len(buf))
	a.Add(buf)
	v.SetChecksum(a.Fold())
	t.ChargeProf(sim.ProfProto, "tcp", m.costs.TCPProc)
	t.ChargeBytesProf(sim.ProfChecksum, "tcp", len(buf), m.costs.ChecksumPerByte)
	seg := m.pool.FromBytes(buf, 64)
	if s := m.sim; s.MetricsEnabled() {
		seg.Hdr().Span = s.NextSpan()
		t.Hop(seg.Hdr().Span, "tcp", "send", seg.Hdr().Len)
	}
	if err := m.ip.Send(t, view.IP4{}, dst, view.IPProtoTCP, seg); err != nil {
		m.sim.Tracef(sim.TraceProto, "tcp: segment send failed: %v", err)
	}
}

// allocPort picks a free local port for an active open.
func (m *Manager) allocPort() (uint16, error) {
	for i := 0; i < 16384; i++ {
		p := m.nextPort
		m.nextPort++
		if m.nextPort == 49152 {
			m.nextPort = 32768
		}
		if _, used := m.listeners[p]; used {
			continue
		}
		inUse := false
		for k := range m.conns {
			if k.localPort == p {
				inUse = true
				break
			}
		}
		if !inUse {
			return p, nil
		}
	}
	return 0, errors.New("tcp: out of ports")
}

// iss generates an initial send sequence.
func (m *Manager) iss() uint32 {
	m.issSeed += 64021 // RFC 793's 4µs clock, loosely
	return m.issSeed
}

// Listener accepts incoming connections on a port.
type Listener struct {
	mgr     *Manager
	port    uint16
	binding *event.Binding
	accept  func(t *sim.Task, c *Conn)
	opts    ConnOptions
	closed  bool
}

// Listen binds a passive endpoint: a guard matching SYNs (and continuing
// segments of not-yet-accepted connections) for the port.
func (m *Manager) Listen(port uint16, opts ConnOptions, accept func(t *sim.Task, c *Conn)) (*Listener, error) {
	if _, used := m.listeners[port]; used {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	l := &Listener{mgr: m, port: port, accept: accept, opts: opts}
	guard := func(t *sim.Task, pkt *mbuf.Mbuf) bool {
		s, ok := parseSeg(pkt)
		if !ok || s.dstPort != port {
			return false
		}
		// Established connections have their own bindings, installed
		// before this one's turn only for new peers: reject segments
		// belonging to an existing connection.
		_, exists := m.conns[connKey{port, s.src, s.srcPort}]
		return !exists
	}
	h := event.Handler{Name: fmt.Sprintf("tcp.listen:%d", port), Fn: l.input, Ephemeral: true}
	b, err := m.disp.Install(RecvEvent, guard, h, 0)
	if err != nil {
		return nil, err
	}
	l.binding = b
	m.listeners[port] = l
	return l, nil
}

// Port returns the listening port.
func (l *Listener) Port() uint16 { return l.port }

// SetConnOptions replaces the options applied to subsequently accepted
// connections (already-open connections are unaffected).
func (l *Listener) SetConnOptions(opts ConnOptions) { l.opts = opts }

// Close stops accepting connections.
func (l *Listener) Close() {
	if l.closed {
		return
	}
	l.closed = true
	l.mgr.disp.Uninstall(l.binding)
	delete(l.mgr.listeners, l.port)
}

// input handles a segment for the listening port with no matching connection.
func (l *Listener) input(t *sim.Task, pkt *mbuf.Mbuf) {
	defer pkt.Free()
	s, ok := parseSeg(pkt)
	if !ok {
		return
	}
	if s.flags&view.TCPRst != 0 {
		return
	}
	if s.flags&view.TCPAck != 0 {
		l.mgr.stats.RSTsSent++
		l.mgr.sendSegment(t, l.port, s.src, s.srcPort, s.ack, 0, view.TCPRst, 0, nil, nil)
		return
	}
	if s.flags&view.TCPSyn == 0 {
		return
	}
	// Passive open: the new TCB inherits the listener's LISTEN state, then
	// the SYN drives LISTEN → SYN-RECEIVED — the RFC 793 §3.2 path, taken
	// verbatim so the conformance table can require it.
	c := l.mgr.newConn(l.port, s.src, s.srcPort, l.opts)
	c.listener = l
	c.setState(StateListen, userCause(CauseListen))
	c.rcv.irs = s.seq
	c.rcv.nxt = s.seq + 1
	// A SYN's window is never scaled (RFC 7323 §2.2); wl1/wl2 seed the
	// window-update freshness rule.
	c.snd.wnd = s.wnd
	c.snd.wl1 = s.seq
	c.snd.wl2 = s.ack
	c.applySynOptions(s)
	c.setState(StateSynRcvd, segCause(s))
	c.sendSYNACK(t)
}
