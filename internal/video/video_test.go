package video

import (
	"testing"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// videoNet builds server+client hosts on a T3 link (the Figure 6 testbed).
func videoNet(t *testing.T, serverP osmodel.Personality) (*plexus.Network, *plexus.Stack, *plexus.Stack) {
	t.Helper()
	n, err := plexus.NewNetwork(1, netdev.DECT3Model(), []plexus.HostSpec{
		{Name: "server", Personality: serverP, Dispatch: osmodel.DispatchInterrupt},
		{Name: "client", Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt},
	})
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	return n, n.Hosts[0], n.Hosts[1]
}

func group(i int) view.IP4 { return view.IP4{224, 0, 1, byte(i + 1)} }

func TestVideoDelivery(t *testing.T) {
	n, sv, cl := videoNet(t, osmodel.SPIN)
	srv, err := NewServer(sv, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(cl, DefaultPort)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddStream(group(0))
	if srv.Streams() != 1 {
		t.Fatal("stream not registered")
	}
	srv.Run(1 * sim.Second)
	n.Sim.RunUntil(2 * sim.Second)
	ss, cs := srv.Stats(), client.Stats()
	t.Logf("server: %+v client: %+v", ss, cs)
	// 30 fps for 1s ≈ 30 frames.
	if ss.FramesSent < 28 || ss.FramesSent > 31 {
		t.Errorf("FramesSent = %d, want ~30", ss.FramesSent)
	}
	if cs.FramesRcvd != ss.FramesSent {
		t.Errorf("client received %d of %d frames", cs.FramesRcvd, ss.FramesSent)
	}
	if cs.ChecksumErrors != 0 {
		t.Errorf("checksum errors: %d", cs.ChecksumErrors)
	}
	if cs.BytesDisplayed == 0 {
		t.Error("nothing displayed")
	}
}

// The Figure 6 claim: at the same stream count, the SPIN server uses roughly
// half the CPU of the monolithic server.
func TestVideoServerCPUHalved(t *testing.T) {
	measure := func(p osmodel.Personality, streams int) float64 {
		n, sv, cl := videoNet(t, p)
		srv, err := NewServer(sv, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewClient(cl, DefaultPort); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streams; i++ {
			srv.AddStream(group(i))
		}
		sv.Host.CPU.MarkUtilization()
		srv.Run(2 * sim.Second)
		n.Sim.RunUntil(2 * sim.Second)
		return sv.Host.CPU.Utilization()
	}
	spin := measure(osmodel.SPIN, 10)
	dux := measure(osmodel.Monolithic, 10)
	t.Logf("10 streams: SPIN=%.1f%% DUX=%.1f%%", spin*100, dux*100)
	if spin <= 0 || dux <= 0 {
		t.Fatal("no utilization measured")
	}
	ratio := dux / spin
	if ratio < 1.6 || ratio > 3.0 {
		t.Errorf("DUX/SPIN CPU ratio = %.2f, want ~2 (paper: half as much processor)", ratio)
	}
}

// Utilization grows with stream count (the Figure 6 x-axis).
func TestVideoUtilizationMonotone(t *testing.T) {
	measure := func(streams int) float64 {
		n, sv, cl := videoNet(t, osmodel.SPIN)
		srv, err := NewServer(sv, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := NewClient(cl, DefaultPort); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streams; i++ {
			srv.AddStream(group(i))
		}
		sv.Host.CPU.MarkUtilization()
		srv.Run(1 * sim.Second)
		n.Sim.RunUntil(1 * sim.Second)
		return sv.Host.CPU.Utilization()
	}
	u5, u10, u20 := measure(5), measure(10), measure(20)
	t.Logf("utilization: 5→%.1f%% 10→%.1f%% 20→%.1f%%", u5*100, u10*100, u20*100)
	if !(u5 < u10 && u10 < u20) {
		t.Errorf("utilization not monotone: %v %v %v", u5, u10, u20)
	}
}

// Beyond ~15 streams the 45Mb/s T3 saturates: the link carries no more bytes
// even as offered load grows.
func TestVideoNetworkSaturation(t *testing.T) {
	carried := func(streams int) float64 {
		n, sv, cl := videoNet(t, osmodel.SPIN)
		srv, err := NewServer(sv, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(cl, DefaultPort)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < streams; i++ {
			srv.AddStream(group(i))
		}
		srv.Run(2 * sim.Second)
		n.Sim.RunUntil(2 * sim.Second)
		return float64(client.Stats().BytesDisplayed) * 8 / 2 / 1e6 // Mb/s goodput
	}
	at10 := carried(10)
	at15 := carried(15)
	at25 := carried(25)
	t.Logf("client goodput: 10 streams %.1f Mb/s, 15 streams %.1f Mb/s, 25 streams %.1f Mb/s", at10, at15, at25)
	if at10 >= 42 {
		t.Errorf("10 streams should not saturate the T3: %.1f", at10)
	}
	if at15 < 38 {
		t.Errorf("15 streams should approach the 45Mb/s T3: %.1f", at15)
	}
	if at25 > 46 {
		t.Errorf("25 streams cannot exceed the wire: %.1f", at25)
	}
}

// The client is framebuffer-bound (paper §5.1): with display writes at
// framebuffer speed, client CPU is dominated by display, so SPIN and DUX
// clients perform similarly; with fast video hardware the gap appears.
func TestVideoClientFramebufferBound(t *testing.T) {
	measure := func(clientP osmodel.Personality, fbBound bool) float64 {
		n, err := plexus.NewNetwork(1, netdev.DECT3Model(), []plexus.HostSpec{
			{Name: "server", Personality: osmodel.SPIN},
			{Name: "client", Personality: clientP},
		})
		if err != nil {
			t.Fatal(err)
		}
		n.PrimeARP()
		sv, cl := n.Hosts[0], n.Hosts[1]
		srv, err := NewServer(sv, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(cl, DefaultPort)
		if err != nil {
			t.Fatal(err)
		}
		client.FramebufferBound = fbBound
		for i := 0; i < 5; i++ {
			srv.AddStream(group(i))
		}
		cl.Host.CPU.MarkUtilization()
		srv.Run(1 * sim.Second)
		n.Sim.RunUntil(1 * sim.Second)
		return cl.Host.CPU.Utilization()
	}
	spinFB := measure(osmodel.SPIN, true)
	duxFB := measure(osmodel.Monolithic, true)
	spinFast := measure(osmodel.SPIN, false)
	duxFast := measure(osmodel.Monolithic, false)
	t.Logf("framebuffer-bound: SPIN=%.1f%% DUX=%.1f%% (ratio %.2f); fast hw: SPIN=%.1f%% DUX=%.1f%% (ratio %.2f)",
		spinFB*100, duxFB*100, duxFB/spinFB, spinFast*100, duxFast*100, duxFast/spinFast)
	// Paper: "the CPU utilization between the two operating systems was
	// similar" when framebuffer-bound.
	if duxFB/spinFB > 1.5 {
		t.Errorf("framebuffer-bound clients should be similar; ratio %.2f", duxFB/spinFB)
	}
	// With better video hardware the OS structure matters again.
	if duxFast/spinFast <= duxFB/spinFB {
		t.Errorf("fast video hardware should widen the gap: fb=%.2f fast=%.2f", duxFB/spinFB, duxFast/spinFast)
	}
}

// The §5.1 ILP candidate: fusing checksum+decompress+display into one
// traversal reduces client CPU (the [CT90] optimization the architecture
// enables).
func TestVideoILPReducesClientCPU(t *testing.T) {
	measure := func(ilp bool) float64 {
		n, sv, cl := videoNet(t, osmodel.SPIN)
		srv, err := NewServer(sv, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		client, err := NewClient(cl, DefaultPort)
		if err != nil {
			t.Fatal(err)
		}
		client.ILP = ilp
		for i := 0; i < 10; i++ {
			srv.AddStream(group(i))
		}
		cl.Host.CPU.MarkUtilization()
		srv.Run(1 * sim.Second)
		n.Sim.RunUntil(1 * sim.Second)
		if client.Stats().ChecksumErrors != 0 {
			t.Fatal("ILP path broke checksum verification")
		}
		if client.Stats().FramesRcvd == 0 {
			t.Fatal("no frames delivered")
		}
		return cl.Host.CPU.Utilization()
	}
	twoPass := measure(false)
	ilp := measure(true)
	t.Logf("client CPU: two-pass %.1f%%, ILP %.1f%% (%.1f%% saved)",
		twoPass*100, ilp*100, (twoPass-ilp)/twoPass*100)
	if ilp >= twoPass {
		t.Errorf("ILP (%.3f) should use less CPU than two-pass (%.3f)", ilp, twoPass)
	}
}

// The paper's setup multicasts "to a set of clients": several client hosts
// on the link each subscribe to their own stream group and receive only it.
func TestVideoMultipleClientHosts(t *testing.T) {
	const clients = 3
	specs := []plexus.HostSpec{{Name: "server", Personality: osmodel.SPIN}}
	for i := 0; i < clients; i++ {
		specs = append(specs, plexus.HostSpec{Name: string(rune('a' + i)), Personality: osmodel.SPIN})
	}
	n, err := plexus.NewNetwork(1, netdev.DECT3Model(), specs)
	if err != nil {
		t.Fatal(err)
	}
	n.PrimeARP()
	sv := n.Hosts[0]
	srv, err := NewServer(sv, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Every client host subscribes on the shared port; each stream goes to
	// a distinct group, and all clients are on the same wire, so each
	// client sees all frames (multicast) — the per-host clients verify
	// checksum integrity independently.
	cls := make([]*Client, clients)
	for i := 0; i < clients; i++ {
		c, err := NewClient(n.Hosts[i+1], DefaultPort)
		if err != nil {
			t.Fatal(err)
		}
		cls[i] = c
		srv.AddStream(group(i))
	}
	srv.Run(1 * sim.Second)
	// Run past the stream end so the final tick's frames land.
	n.Sim.RunUntil(1200 * sim.Millisecond)
	want := srv.Stats().FramesSent
	if want == 0 {
		t.Fatal("no frames sent")
	}
	for i, c := range cls {
		if c.Stats().FramesRcvd != want {
			t.Errorf("client %d received %d of %d multicast frames", i, c.Stats().FramesRcvd, want)
		}
		if c.Stats().ChecksumErrors != 0 {
			t.Errorf("client %d checksum errors: %d", i, c.Stats().ChecksumErrors)
		}
	}
}
