// Package video implements the paper's §5.1 network video system: a server
// extension that reads video frame-by-frame "off the disk" and multicasts
// each frame as a UDP datagram to a set of client streams, and a client
// extension that checksums, decompresses, and displays frames to a
// cost-modelled framebuffer.
//
// The protocol is application-specific in exactly the paper's way: the UDP
// checksum is disabled (the client makes its own checksum pass over the
// data — §1.1's legitimate-by-agreement optimization), the server is
// co-located with the kernel on SPIN so disk blocks go to the network
// without crossing the user/kernel boundary, and delivery uses multicast
// semantics added to UDP.
//
// Figure 6 plots server CPU utilization against the number of client
// streams; the client's framebuffer-bound behaviour explains the paper's
// null result for client-side CPU.
package video

import (
	"fmt"

	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// Defaults matching the paper's setup: 30 frames/second; a frame size such
// that 15 streams saturate the 45Mb/s T3 (45e6/8/30/15 ≈ 12.5KB).
const (
	DefaultFPS       = 30
	DefaultFrameSize = 12500
	DefaultPort      = 5004
)

// appChecksum is the client's application-level checksum pass: a simple
// 32-bit sum placed in the frame header by the server.
func appChecksum(b []byte) uint32 {
	var s uint32
	for _, x := range b {
		s += uint32(x)
	}
	return s
}

// frameHdrLen is the application frame header: stream id, frame seq,
// checksum.
const frameHdrLen = 12

// ServerConfig configures a video server.
type ServerConfig struct {
	FrameSize int // bytes per frame, including header
	FPS       int
	// Port is the destination UDP port for all streams.
	Port uint16
}

func (c *ServerConfig) defaults() {
	if c.FrameSize == 0 {
		c.FrameSize = DefaultFrameSize
	}
	if c.FPS == 0 {
		c.FPS = DefaultFPS
	}
	if c.Port == 0 {
		c.Port = DefaultPort
	}
}

// ServerStats counts server activity.
type ServerStats struct {
	FramesSent uint64
	TicksLate  uint64 // frame periods that began with the previous period's work unfinished
	Ticks      uint64
}

// Server is the video-server extension.
type Server struct {
	st      *plexus.Stack
	cfg     ServerConfig
	app     *plexus.UDPApp
	streams []view.IP4
	seq     uint32
	stats   ServerStats

	running  bool
	stopAt   sim.Time
	tickDone bool
}

// NewServer opens the server's sending endpoint (checksum disabled — the
// application-specific UDP variant).
func NewServer(st *plexus.Stack, cfg ServerConfig) (*Server, error) {
	cfg.defaults()
	app, err := st.OpenUDP(plexus.UDPAppOptions{DisableChecksum: true}, nil)
	if err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}
	return &Server{st: st, cfg: cfg, app: app}, nil
}

// AddStream adds one client stream addressed to the given multicast group
// (or unicast client address).
func (s *Server) AddStream(group view.IP4) { s.streams = append(s.streams, group) }

// Streams returns the number of configured streams.
func (s *Server) Streams() int { return len(s.streams) }

// Stats returns a snapshot of counters.
func (s *Server) Stats() ServerStats { return s.stats }

// Run streams video for the given duration of simulated time.
func (s *Server) Run(duration sim.Time) {
	if s.running {
		return
	}
	s.running = true
	s.stopAt = s.st.Host.Sim.Now() + duration
	s.tickDone = true
	s.tick()
}

func (s *Server) tick() {
	simulator := s.st.Host.Sim
	if simulator.Now() >= s.stopAt {
		s.running = false
		return
	}
	s.stats.Ticks++
	if !s.tickDone {
		// The previous frame period's sends are still queued on the
		// CPU: the server failed its deadline (paper: "when the server
		// would fail to meet its deadline").
		s.stats.TicksLate++
	}
	s.tickDone = false
	s.st.Spawn("video-tick", func(t *sim.Task) {
		s.sendFrames(t)
		s.tickDone = true
	})
	period := sim.Second / sim.Time(s.cfg.FPS)
	simulator.After(period, "video-tick", func() { s.tick() })
}

// sendFrames reads and transmits one frame per stream.
func (s *Server) sendFrames(t *sim.Task) {
	costs := s.st.Host.Costs
	for i, dst := range s.streams {
		s.seq++
		// Read the frame from disk through the file system.
		t.Charge(costs.DiskReadSetup)
		t.ChargeBytes(s.cfg.FrameSize, costs.DiskReadPerByte)
		if s.st.Host.Personality == osmodel.Monolithic {
			// read(2): trap plus copyout of the file data to the
			// user buffer. (The subsequent send pays the copyin;
			// SPIN's in-kernel extension pays neither — §5.1.)
			t.Charge(costs.Syscall)
			t.ChargeBytes(s.cfg.FrameSize, costs.CopyPerByte)
		}
		frame := s.buildFrame(uint32(i), s.seq)
		if err := s.app.Send(t, dst, s.cfg.Port, frame); err != nil {
			s.st.Host.Sim.Tracef(sim.TraceApp, "video: send failed: %v", err)
			continue
		}
		s.stats.FramesSent++
	}
}

// buildFrame synthesizes frame content with the application-level header the
// client verifies.
func (s *Server) buildFrame(stream, seq uint32) []byte {
	b := make([]byte, s.cfg.FrameSize)
	for i := frameHdrLen; i < len(b); i++ {
		b[i] = byte(int(seq) + i*7)
	}
	be32(b[0:], stream)
	be32(b[4:], seq)
	be32(b[8:], appChecksum(b[frameHdrLen:]))
	return b
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// ClientStats counts client activity.
type ClientStats struct {
	FramesRcvd     uint64
	ChecksumErrors uint64
	BytesDisplayed uint64
}

// Client is the video-client extension: it checksums and decompresses each
// frame — "two passes over the data", as the paper notes — and writes the
// result to the framebuffer.
type Client struct {
	st    *plexus.Stack
	app   *plexus.UDPApp
	stats ClientStats
	// FramebufferBound, when false, models the faster video hardware the
	// paper anticipates (DEC J300): display writes cost RAM speed instead.
	FramebufferBound bool
	// ILP enables the integrated-layer-processing optimization the paper
	// says the client is "a good candidate" for [CT90]: checksum,
	// decompression, and display fused into a single traversal, saving
	// the extra memory-read pass over the frame.
	ILP bool
}

// NewClient subscribes to the stream on the given port (multicast accepted).
func NewClient(st *plexus.Stack, port uint16) (*Client, error) {
	c := &Client{st: st, FramebufferBound: true}
	app, err := st.OpenUDP(plexus.UDPAppOptions{
		Port:            port,
		AcceptMulticast: true,
	}, c.frame)
	if err != nil {
		return nil, fmt.Errorf("video: %w", err)
	}
	c.app = app
	return c, nil
}

// Stats returns a snapshot of counters.
func (c *Client) Stats() ClientStats { return c.stats }

// frame processes one received video frame.
func (c *Client) frame(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
	if len(data) < frameHdrLen {
		c.stats.ChecksumErrors++
		return
	}
	costs := c.st.Host.Costs
	payload := data[frameHdrLen:]
	displayPerByte := costs.FramebufferPerByte
	if !c.FramebufferBound {
		displayPerByte = costs.RAMPerByte
	}
	if c.ILP {
		// Integrated layer processing [CT90]: one fused traversal reads
		// each byte once, checksums, decompresses, and writes it out.
		t.ChargeBytes(len(payload),
			costs.RAMPerByte+costs.ChecksumPerByte+costs.DecompressPerByte+displayPerByte)
		if appChecksum(payload) != rd32(data[8:]) {
			c.stats.ChecksumErrors++
			return
		}
	} else {
		// Pass 1: checksum (read the frame once).
		t.ChargeBytes(len(payload), costs.RAMPerByte+costs.ChecksumPerByte)
		if appChecksum(payload) != rd32(data[8:]) {
			c.stats.ChecksumErrors++
			return
		}
		// Pass 2: decompress (read it again) and display.
		t.ChargeBytes(len(payload), costs.RAMPerByte+costs.DecompressPerByte)
		t.ChargeBytes(len(payload), displayPerByte)
	}
	c.stats.FramesRcvd++
	c.stats.BytesDisplayed += uint64(len(payload))
}

// Close releases the client endpoint.
func (c *Client) Close() { c.app.Close() }
