// Package repro carries the repository-level benchmark harness: one
// testing.B benchmark per table and figure of the paper's evaluation, plus
// the microbenchmarks behind the architecture's headline claims (dispatch ≈
// procedure call; VIEW ≈ zero copy).
//
// Each benchmark runs the corresponding simulated experiment b.N times and
// reports the *simulated* metric (µs of latency, Mb/s of throughput, % of
// CPU) as custom units next to the usual wall-clock ns/op, so
// `go test -bench=. -benchmem` regenerates every row the paper reports.
package repro

import (
	"fmt"
	"testing"

	"plexus/internal/bench"
	"plexus/internal/event"
	"plexus/internal/mbuf"
	"plexus/internal/netdev"
	"plexus/internal/sim"
	"plexus/internal/view"
)

// --- Figure 5: UDP round-trip latency --------------------------------------

func benchFig5(b *testing.B, model netdev.Model, sys bench.System) {
	b.Helper()
	var last sim.Time
	for i := 0; i < b.N; i++ {
		rtt, err := bench.UDPEchoRTT(model, sys, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = rtt
	}
	b.ReportMetric(last.Micros(), "sim-µs/RTT")
}

func BenchmarkFig5EthernetPlexusInterrupt(b *testing.B) {
	benchFig5(b, netdev.EthernetModel(), bench.SysPlexusInterrupt)
}
func BenchmarkFig5EthernetPlexusThread(b *testing.B) {
	benchFig5(b, netdev.EthernetModel(), bench.SysPlexusThread)
}
func BenchmarkFig5EthernetDUX(b *testing.B) {
	benchFig5(b, netdev.EthernetModel(), bench.SysDUX)
}
func BenchmarkFig5ATMPlexusInterrupt(b *testing.B) {
	benchFig5(b, netdev.ForeATMModel(), bench.SysPlexusInterrupt)
}
func BenchmarkFig5ATMPlexusThread(b *testing.B) {
	benchFig5(b, netdev.ForeATMModel(), bench.SysPlexusThread)
}
func BenchmarkFig5ATMDUX(b *testing.B) {
	benchFig5(b, netdev.ForeATMModel(), bench.SysDUX)
}
func BenchmarkFig5T3PlexusInterrupt(b *testing.B) {
	benchFig5(b, netdev.DECT3Model(), bench.SysPlexusInterrupt)
}
func BenchmarkFig5T3PlexusThread(b *testing.B) {
	benchFig5(b, netdev.DECT3Model(), bench.SysPlexusThread)
}
func BenchmarkFig5T3DUX(b *testing.B) {
	benchFig5(b, netdev.DECT3Model(), bench.SysDUX)
}

func benchDriverMin(b *testing.B, model netdev.Model) {
	b.Helper()
	var last sim.Time
	for i := 0; i < b.N; i++ {
		rtt, err := bench.DriverEchoRTT(model, 8, 4)
		if err != nil {
			b.Fatal(err)
		}
		last = rtt
	}
	b.ReportMetric(last.Micros(), "sim-µs/RTT")
}

func BenchmarkFig5EthernetDriverMin(b *testing.B) { benchDriverMin(b, netdev.EthernetModel()) }
func BenchmarkFig5ATMDriverMin(b *testing.B)      { benchDriverMin(b, netdev.ForeATMModel()) }
func BenchmarkFig5T3DriverMin(b *testing.B)       { benchDriverMin(b, netdev.DECT3Model()) }

// The §4.1 fast-driver variant (337µs Ethernet / 241µs ATM in the paper).
func BenchmarkFig5EthernetFastDriver(b *testing.B) {
	benchFig5(b, netdev.FastDriver(netdev.EthernetModel()), bench.SysPlexusInterrupt)
}
func BenchmarkFig5ATMFastDriver(b *testing.B) {
	benchFig5(b, netdev.FastDriver(netdev.ForeATMModel()), bench.SysPlexusInterrupt)
}

// --- §4.2 throughput table --------------------------------------------------

func benchTput(b *testing.B, model netdev.Model, sys bench.System) {
	b.Helper()
	var last float64
	for i := 0; i < b.N; i++ {
		mbps, err := bench.TCPThroughput(model, sys, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		last = mbps
	}
	b.ReportMetric(last, "sim-Mb/s")
}

func BenchmarkTputEthernetPlexus(b *testing.B) {
	benchTput(b, netdev.EthernetModel(), bench.SysPlexusInterrupt)
}
func BenchmarkTputEthernetDUX(b *testing.B) { benchTput(b, netdev.EthernetModel(), bench.SysDUX) }
func BenchmarkTputATMPlexus(b *testing.B) {
	benchTput(b, netdev.ForeATMModel(), bench.SysPlexusInterrupt)
}
func BenchmarkTputATMDUX(b *testing.B)   { benchTput(b, netdev.ForeATMModel(), bench.SysDUX) }
func BenchmarkTputT3Plexus(b *testing.B) { benchTput(b, netdev.DECT3Model(), bench.SysPlexusInterrupt) }
func BenchmarkTputT3DUX(b *testing.B)    { benchTput(b, netdev.DECT3Model(), bench.SysDUX) }

// --- Figure 6: video server CPU utilization ---------------------------------

func benchFig6(b *testing.B, streams int) {
	b.Helper()
	var spin, dux float64
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6([]int{streams})
		if err != nil {
			b.Fatal(err)
		}
		spin = rows[0].Utilization[bench.SysPlexusInterrupt]
		dux = rows[0].Utilization[bench.SysDUX]
	}
	b.ReportMetric(spin*100, "sim-%CPU-SPIN")
	b.ReportMetric(dux*100, "sim-%CPU-DUX")
}

func BenchmarkFig6Streams5(b *testing.B)  { benchFig6(b, 5) }
func BenchmarkFig6Streams10(b *testing.B) { benchFig6(b, 10) }
func BenchmarkFig6Streams15(b *testing.B) { benchFig6(b, 15) }
func BenchmarkFig6Streams30(b *testing.B) { benchFig6(b, 30) }

// --- Figure 7: TCP redirection latency --------------------------------------

func benchFig7(b *testing.B, payload int) {
	b.Helper()
	var kernel, splice sim.Time
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7([]int{payload})
		if err != nil {
			b.Fatal(err)
		}
		kernel = rows[0].KernelLatency
		splice = rows[0].SpliceLatency
	}
	b.ReportMetric(kernel.Micros(), "sim-µs-kernel")
	b.ReportMetric(splice.Micros(), "sim-µs-splice")
}

func BenchmarkFig7Payload64(b *testing.B)   { benchFig7(b, 64) }
func BenchmarkFig7Payload512(b *testing.B)  { benchFig7(b, 512) }
func BenchmarkFig7Payload1460(b *testing.B) { benchFig7(b, 1460) }

// --- µ1: dispatcher overhead ≈ procedure call (paper §2) --------------------

// BenchmarkDispatch measures the real (wall-clock) cost of the dispatcher
// mechanism itself: declare → raise through guard chains of varying length.
func benchDispatch(b *testing.B, guards int) {
	b.Helper()
	s := sim.New(1)
	cpu := sim.NewCPU(s, "cpu")
	d := event.NewDispatcher(event.Costs{})
	d.MustDeclare("E", event.Options{})
	reject := func(*sim.Task, *mbuf.Mbuf) bool { return false }
	for i := 0; i < guards-1; i++ {
		if _, err := d.Install("E", reject, event.Proc("r", func(*sim.Task, *mbuf.Mbuf) {}), 0); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := d.Install("E", nil, event.Proc("h", func(*sim.Task, *mbuf.Mbuf) {}), 0); err != nil {
		b.Fatal(err)
	}
	m := mbuf.DefaultPool().FromBytes(make([]byte, 64), 16)
	defer m.Free()
	var task *sim.Task
	cpu.Submit(sim.PrioKernel, "bench", func(t *sim.Task) { task = t })
	s.Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Raise(task, "E", m)
	}
}

func BenchmarkDispatch1Guard(b *testing.B)   { benchDispatch(b, 1) }
func BenchmarkDispatch8Guards(b *testing.B)  { benchDispatch(b, 8) }
func BenchmarkDispatch64Guards(b *testing.B) { benchDispatch(b, 64) }

// --- µ2: VIEW (zero-copy header access) vs copying --------------------------

func BenchmarkViewHeaderAccess(b *testing.B) {
	frame := make([]byte, 1514)
	ev, _ := view.Ethernet(frame)
	ev.SetEtherType(view.EtherTypeIPv4)
	frame[14] = 0x45
	var sink uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eth, _ := view.Ethernet(frame)
		if eth.EtherType() == view.EtherTypeIPv4 {
			ipv, _ := view.IPv4(frame[14:34])
			sink += uint32(ipv.TTL()) + ipv.Src().Uint32()
		}
	}
	_ = sink
}

func BenchmarkCopyHeaderAccess(b *testing.B) {
	frame := make([]byte, 1514)
	ev, _ := view.Ethernet(frame)
	ev.SetEtherType(view.EtherTypeIPv4)
	frame[14] = 0x45
	var sink uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The copying alternative the paper calls "unacceptable".
		hdr := make([]byte, 34)
		copy(hdr, frame[:34])
		eth, _ := view.Ethernet(hdr)
		if eth.EtherType() == view.EtherTypeIPv4 {
			ipv, _ := view.IPv4(hdr[14:34])
			sink += uint32(ipv.TTL()) + ipv.Src().Uint32()
		}
	}
	_ = sink
}

// --- mbuf operations ---------------------------------------------------------

func BenchmarkMbufPrependAdj(b *testing.B) {
	pool := mbuf.NewPool()
	for i := 0; i < b.N; i++ {
		m := pool.FromBytes(make([]byte, 1400), 64)
		m, _ = m.Prepend(8)
		m, _ = m.Prepend(20)
		m, _ = m.Prepend(14)
		m.Adj(42)
		m.Free()
	}
}

// --- sanity: the harness prints the same rows as cmd/plexus-bench -----------

func Example_fig5RowFormat() {
	fmt.Printf("%-10s %-22s %s\n", "device", "system", "RTT")
	// Output:
	// device     system                 RTT
}

// --- the paper's concluding HTTP demo ----------------------------------------

func benchHTTP(b *testing.B, sys bench.System) {
	b.Helper()
	var last sim.Time
	for i := 0; i < b.N; i++ {
		lat, err := bench.HTTPLatency(sys, 5)
		if err != nil {
			b.Fatal(err)
		}
		last = lat
	}
	b.ReportMetric(last.Micros(), "sim-µs/GET")
}

func BenchmarkHTTPSPINServer(b *testing.B) { benchHTTP(b, bench.SysPlexusInterrupt) }
func BenchmarkHTTPDUXServer(b *testing.B)  { benchHTTP(b, bench.SysDUX) }
