// Command plexus-trace runs a small scenario on the simulated network and
// dumps the annotated event trace: CPU task scheduling, wire transmissions,
// protocol decisions, and dispatcher activity, each stamped with simulated
// time. It is the debugging lens for the protocol graph.
//
// Usage:
//
//	plexus-trace                  # UDP echo scenario, all categories
//	plexus-trace -scenario tcp    # TCP handshake + small transfer
//	plexus-trace -only net,proto  # filter categories (cpu,net,proto,app,event)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"plexus/internal/icmp"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/view"
)

func main() {
	scenario := flag.String("scenario", "udp", "scenario: udp | tcp | ping")
	only := flag.String("only", "", "comma-separated categories: cpu,net,proto,app,event (default all)")
	flag.Parse()

	filter := map[sim.TraceCategory]bool{}
	if *only != "" {
		names := map[string]sim.TraceCategory{
			"cpu": sim.TraceCPU, "net": sim.TraceNet, "proto": sim.TraceProto,
			"app": sim.TraceApp, "event": sim.TraceEvent,
		}
		for _, n := range strings.Split(*only, ",") {
			cat, ok := names[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "plexus-trace: unknown category %q\n", n)
				os.Exit(2)
			}
			filter[cat] = true
		}
	}

	net, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		plexus.HostSpec{Name: "client", Personality: osmodel.SPIN},
		plexus.HostSpec{Name: "server", Personality: osmodel.SPIN})
	if err != nil {
		fmt.Fprintln(os.Stderr, "plexus-trace:", err)
		os.Exit(1)
	}
	rec := &sim.RecordingTracer{}
	if len(filter) > 0 {
		rec.Only = filter
	}
	net.Sim.SetTracer(rec)

	switch *scenario {
	case "udp":
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			t.Sim().Tracef(sim.TraceApp, "server: echoing %dB to %v:%d", len(data), src, srcPort)
			_ = echo.Send(t, src, srcPort, data)
		})
		if err != nil {
			break
		}
		var capp *plexus.UDPApp
		capp, err = client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			t.Sim().Tracef(sim.TraceApp, "client: got %dB back", len(data))
		})
		if err != nil {
			break
		}
		client.Spawn("client", func(t *sim.Task) {
			t.Sim().Tracef(sim.TraceApp, "client: sending 8B to %v:7", server.Addr())
			_ = capp.Send(t, server.Addr(), 7, []byte("01234567"))
		})
	case "tcp":
		_, err = server.ListenTCP(80, plexus.TCPAppOptions{
			OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
				t.Sim().Tracef(sim.TraceApp, "server: %dB received", len(data))
				_ = conn.Send(t, data)
			},
			OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
		}, nil)
		if err != nil {
			break
		}
		client.Spawn("client", func(t *sim.Task) {
			_, cerr := client.ConnectTCP(t, server.Addr(), 80, plexus.TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
					t2.Sim().Tracef(sim.TraceApp, "client: established, sending")
					_ = conn.Send(t2, []byte("hello over tcp"))
					conn.Close(t2)
				},
				OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
					t2.Sim().Tracef(sim.TraceApp, "client: %dB echoed", len(data))
				},
			})
			if cerr != nil {
				t.Sim().Tracef(sim.TraceApp, "client: connect failed: %v", cerr)
			}
		})
	case "ping":
		client.Spawn("ping", func(t *sim.Task) {
			_ = client.ICMP.Ping(t, server.Addr(), 1, 1, []byte("ping"), func(t2 *sim.Task, r icmp.EchoReply) {
				t2.Sim().Tracef(sim.TraceApp, "ping: reply seq=%d from %v", r.Seq, r.From)
			})
		})
	default:
		fmt.Fprintf(os.Stderr, "plexus-trace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plexus-trace:", err)
		os.Exit(1)
	}
	net.Sim.RunUntil(120 * sim.Second)
	fmt.Print(rec.String())
	fmt.Printf("%d trace events, %d sim events executed, final time %v\n",
		len(rec.Lines), net.Sim.Executed(), net.Sim.Now())
}
