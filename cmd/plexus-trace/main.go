// Command plexus-trace runs a small scenario on the simulated network and
// dumps what the flight recorder saw: the annotated text trace (CPU task
// scheduling, wire transmissions, protocol decisions, dispatcher activity),
// single-packet lifecycle itineraries, a simulated-CPU profile as Chrome
// trace_event JSON (loadable in Perfetto) or folded stacks, each stamped
// with simulated time. It is the debugging lens for the protocol graph.
//
// Usage:
//
//	plexus-trace                      # UDP echo scenario, all categories
//	plexus-trace -scenario tcp        # TCP handshake + small transfer
//	plexus-trace -only net,proto      # filter categories (cpu,net,proto,app,event)
//	plexus-trace -spans               # list packet lifecycle spans
//	plexus-trace -follow 3            # one packet's full itinerary, per-hop deltas
//	plexus-trace -chrome out.json     # Chrome trace_event profile (Perfetto):
//	                                  # CPU slices + telemetry counter tracks
//	                                  # + TCP state-transition instants
//	plexus-trace -folded out.txt      # folded-stacks CPU profile
//	plexus-trace -scenario tcp -tcpstates all
//	                                  # audited TCP state transitions + RFC 793 verdict
//	plexus-trace -scenario tcp -tcpstates 10.0.0.1:32768-10.0.0.2:80
//	                                  # one connection endpoint's transitions
//	plexus-trace -scenario tcp -tcpjsonl states.jsonl
//	                                  # state transitions as deterministic JSONL
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"plexus/internal/audit"
	"plexus/internal/icmp"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/stats"
	"plexus/internal/tcp"
	"plexus/internal/telemetry"
	"plexus/internal/view"
)

func main() {
	scenario := flag.String("scenario", "udp", "scenario: udp | tcp | ping")
	only := flag.String("only", "", "comma-separated categories: cpu,net,proto,app,event (default all)")
	spans := flag.Bool("spans", false, "list packet lifecycle spans instead of the text trace")
	follow := flag.Uint64("follow", 0, "print the full itinerary of one packet span (see -spans)")
	chrome := flag.String("chrome", "", "write a Chrome trace_event JSON profile to this file")
	folded := flag.String("folded", "", "write a folded-stacks CPU profile to this file")
	tcpstates := flag.String("tcpstates", "", `print audited TCP state transitions: "all" or "ip:port-ip:port"`)
	tcpjsonl := flag.String("tcpjsonl", "", "write TCP state transitions as JSON lines to this file")
	flag.Parse()

	var cats []sim.TraceCategory
	if *only != "" {
		names := map[string]sim.TraceCategory{
			"cpu": sim.TraceCPU, "net": sim.TraceNet, "proto": sim.TraceProto,
			"app": sim.TraceApp, "event": sim.TraceEvent,
		}
		for _, n := range strings.Split(*only, ",") {
			cat, ok := names[strings.TrimSpace(n)]
			if !ok {
				fmt.Fprintf(os.Stderr, "plexus-trace: unknown category %q\n", n)
				os.Exit(2)
			}
			cats = append(cats, cat)
		}
	}

	net, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		plexus.HostSpec{Name: "client", Personality: osmodel.SPIN},
		plexus.HostSpec{Name: "server", Personality: osmodel.SPIN})
	if err != nil {
		fmt.Fprintln(os.Stderr, "plexus-trace:", err)
		os.Exit(1)
	}
	rec := &sim.RecordingTracer{}
	net.Sim.SetTracer(rec)
	if len(cats) > 0 {
		// Emit-path filtering: disabled categories never pay the Sprintf.
		net.Sim.EnableTrace(cats...)
	}
	metrics := stats.NewRecorder(stats.Config{})
	net.Sim.SetMetrics(metrics)

	// The TCP conformance-audit plane: an assertion sink retains every state
	// transition, the checker screens each against RFC 793, and the optional
	// JSONL sink writes the deterministic offline form. One shared pipeline
	// serves both hosts, so events interleave in simulated-time order. The
	// Chrome export adds a flight-recorder ring whose retained transitions
	// become instant events on each host's "states" track.
	var events *audit.AssertSink
	var checker *audit.Checker
	var jsonlFile *os.File
	var ring *audit.RingSink
	if *tcpstates != "" || *tcpjsonl != "" || *chrome != "" {
		events = &audit.AssertSink{}
		sinks := audit.Tee{events}
		if *tcpjsonl != "" {
			f, err := os.Create(*tcpjsonl)
			if err != nil {
				fmt.Fprintln(os.Stderr, "plexus-trace:", err)
				os.Exit(1)
			}
			jsonlFile = f
			sinks = append(sinks, audit.NewJSONLSink(f))
		}
		if *chrome != "" {
			ring = audit.NewRingSink(4096)
			sinks = append(sinks, ring)
		}
		checker = audit.NewChecker(sinks)
		client.TCP.SetAuditSink(checker)
		server.TCP.SetAuditSink(checker)
	}

	// The Chrome export also samples the whole system while the scenario
	// runs — link, pools, per-connection TCP, event queue — for counter
	// tracks beside the CPU profile. The sampling engine keeps the simulator
	// non-empty, so the run is horizon-bound instead of drain-bound: a 2s
	// horizon covers every scenario's activity and keeps the rings (2048
	// points at 1ms) from overwriting it with idle tail.
	var eng *telemetry.Engine
	horizon := 120 * sim.Second
	if *chrome != "" {
		eng = net.Monitor(plexus.MonitorOptions{
			Telemetry: telemetry.Options{Interval: sim.Millisecond},
			PoolCap:   1 << 20,
		})
		horizon = 2 * sim.Second
	}

	switch *scenario {
	case "udp":
		var echo *plexus.UDPApp
		echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			t.Sim().Tracef(sim.TraceApp, "server: echoing %dB to %v:%d", len(data), src, srcPort)
			_ = echo.Send(t, src, srcPort, data)
		})
		if err != nil {
			break
		}
		var capp *plexus.UDPApp
		capp, err = client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
			t.Sim().Tracef(sim.TraceApp, "client: got %dB back", len(data))
		})
		if err != nil {
			break
		}
		client.Spawn("client", func(t *sim.Task) {
			t.Sim().Tracef(sim.TraceApp, "client: sending 8B to %v:7", server.Addr())
			_ = capp.Send(t, server.Addr(), 7, []byte("01234567"))
		})
	case "tcp":
		_, err = server.ListenTCP(80, plexus.TCPAppOptions{
			OnRecv: func(t *sim.Task, conn *plexus.TCPApp, data []byte) {
				t.Sim().Tracef(sim.TraceApp, "server: %dB received", len(data))
				_ = conn.Send(t, data)
			},
			OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
		}, nil)
		if err != nil {
			break
		}
		client.Spawn("client", func(t *sim.Task) {
			_, cerr := client.ConnectTCP(t, server.Addr(), 80, plexus.TCPAppOptions{
				OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
					t2.Sim().Tracef(sim.TraceApp, "client: established, sending")
					_ = conn.Send(t2, []byte("hello over tcp"))
					conn.Close(t2)
				},
				OnRecv: func(t2 *sim.Task, conn *plexus.TCPApp, data []byte) {
					t2.Sim().Tracef(sim.TraceApp, "client: %dB echoed", len(data))
				},
			})
			if cerr != nil {
				t.Sim().Tracef(sim.TraceApp, "client: connect failed: %v", cerr)
			}
		})
	case "ping":
		client.Spawn("ping", func(t *sim.Task) {
			_ = client.ICMP.Ping(t, server.Addr(), 1, 1, []byte("ping"), func(t2 *sim.Task, r icmp.EchoReply) {
				t2.Sim().Tracef(sim.TraceApp, "ping: reply seq=%d from %v", r.Seq, r.From)
			})
		})
	default:
		fmt.Fprintf(os.Stderr, "plexus-trace: unknown scenario %q\n", *scenario)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "plexus-trace:", err)
		os.Exit(1)
	}
	net.Sim.RunUntil(horizon)

	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plexus-trace:", err)
			os.Exit(1)
		}
		counters := telemetry.ChromeCounters(eng)
		instants := audit.ChromeInstants(ring)
		if err := metrics.WriteChromeTraceWith(f, counters, instants); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "plexus-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace (%d samples, %d hops, %d counter points, %d state instants) to %s — open at ui.perfetto.dev\n",
			metrics.SamplesRecorded(), metrics.HopsRecorded(), len(counters), len(instants), *chrome)
	}
	if *folded != "" {
		if err := os.WriteFile(*folded, []byte(metrics.Folded()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "plexus-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote folded CPU profile to %s\n", *folded)
	}
	if jsonlFile != nil {
		if err := jsonlFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "plexus-trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d TCP state transitions to %s\n", len(events.Events), *tcpjsonl)
	}
	switch {
	case *tcpstates != "":
		printTCPStates(events, checker, *tcpstates)
	case *follow != 0:
		printItinerary(metrics, *follow)
	case *spans:
		printSpans(metrics)
	case *chrome == "" && *folded == "" && *tcpjsonl == "":
		fmt.Print(rec.String())
		fmt.Printf("%d trace events, %d sim events executed, final time %v\n",
			len(rec.Lines), net.Sim.Executed(), net.Sim.Now())
	}
}

// printTCPStates prints the audited transitions (all, or one endpoint's) and
// the RFC 793 conformance verdict.
func printTCPStates(events *audit.AssertSink, checker *audit.Checker, filter string) {
	var match func(ev tcp.Transition) bool
	if filter == "all" {
		match = func(tcp.Transition) bool { return true }
	} else {
		la, lp, ra, rp, err := parseConn(filter)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plexus-trace:", err)
			os.Exit(2)
		}
		match = func(ev tcp.Transition) bool {
			return ev.LocalAddr == la && ev.LocalPort == lp && ev.RemoteAddr == ra && ev.RemotePort == rp
		}
	}
	n := 0
	for _, ev := range events.Events {
		if !match(ev) {
			continue
		}
		n++
		cause := ev.Cause.Kind.String()
		switch ev.Cause.Kind {
		case tcp.CauseSegment:
			cause = fmt.Sprintf("segment %s seq=%d ack=%d", view.FlagString(ev.Cause.Flags), ev.Cause.Seq, ev.Cause.Ack)
		case tcp.CauseTimer, tcp.CauseUser:
			cause = fmt.Sprintf("%s %q", ev.Cause.Kind, ev.Cause.Detail)
		}
		fmt.Printf("%12v  %-6s %15s:%-5d → %15s:%-5d  %-12s → %-12s  on %s\n",
			ev.At, ev.Host, ev.LocalAddr, ev.LocalPort, ev.RemoteAddr, ev.RemotePort,
			ev.Old, ev.New, cause)
	}
	fmt.Printf("%d transitions (%d total), %d RFC 793 conformance violations\n",
		n, checker.Events(), checker.ViolationCount())
	for _, v := range checker.Violations() {
		fmt.Printf("  VIOLATION at %v on %s: %s\n", v.Event.At, v.Event.Host, v.Reason)
	}
}

// parseConn parses "ip:port-ip:port" as (local, remote) seen from one
// endpoint.
func parseConn(s string) (la view.IP4, lp uint16, ra view.IP4, rp uint16, err error) {
	halves := strings.Split(s, "-")
	if len(halves) != 2 {
		return la, lp, ra, rp, fmt.Errorf("bad connection %q: want ip:port-ip:port", s)
	}
	if la, lp, err = parseAddr(halves[0]); err != nil {
		return la, lp, ra, rp, err
	}
	ra, rp, err = parseAddr(halves[1])
	return la, lp, ra, rp, err
}

// parseAddr parses "a.b.c.d:port".
func parseAddr(s string) (view.IP4, uint16, error) {
	var ip view.IP4
	host, port, ok := strings.Cut(s, ":")
	if !ok {
		return ip, 0, fmt.Errorf("bad address %q: want ip:port", s)
	}
	octets := strings.Split(host, ".")
	if len(octets) != 4 {
		return ip, 0, fmt.Errorf("bad address %q: want dotted quad", host)
	}
	for i, o := range octets {
		v, err := strconv.ParseUint(o, 10, 8)
		if err != nil {
			return ip, 0, fmt.Errorf("bad address %q: %v", host, err)
		}
		ip[i] = byte(v)
	}
	p, err := strconv.ParseUint(port, 10, 16)
	if err != nil {
		return ip, 0, fmt.Errorf("bad port %q: %v", port, err)
	}
	return ip, uint16(p), nil
}

// printSpans summarizes every recorded packet span: first/last hop and count.
func printSpans(m *stats.Recorder) {
	ids := m.Spans()
	if len(ids) == 0 {
		fmt.Println("no packet spans recorded")
		return
	}
	for _, id := range ids {
		hops := m.SpanHops(id)
		first, last := hops[0], hops[len(hops)-1]
		fmt.Printf("span %-4d %2d hops  %12v → %-12v  %s/%s.%s → %s/%s.%s\n",
			id, len(hops), first.At, last.At,
			first.Host, first.Layer, first.Action, last.Host, last.Layer, last.Action)
	}
	fmt.Printf("%d spans; follow one with -follow <n>\n", len(ids))
}

// printItinerary prints one packet's lifecycle with per-hop simulated-time
// deltas — the "where did my packet spend its time" view.
func printItinerary(m *stats.Recorder, span uint64) {
	hops := m.SpanHops(span)
	if len(hops) == 0 {
		fmt.Printf("span %d: no hops recorded (use -spans to list)\n", span)
		os.Exit(1)
	}
	fmt.Printf("span %d: %d hops, %v total\n", span, len(hops), hops[len(hops)-1].At-hops[0].At)
	prev := hops[0].At
	for _, h := range hops {
		fmt.Printf("  %12v  +%-10v %-8s %-6s %-14s %dB\n",
			h.At, h.At-prev, h.Host, h.Layer, h.Action, h.Bytes)
		prev = h.At
	}
}
