// Command plexus-httpd reproduces the paper's concluding demo: the protocol
// stack servicing HTTP requests, with the server running as an in-kernel
// SPIN extension. It builds a simulated two-host network, serves a small
// site over the reproduction's own TCP, issues a batch of GETs, and prints
// each response with its simulated latency — once with a SPIN server and
// once with a monolithic one for comparison.
//
// Usage:
//
//	plexus-httpd                 # default: 5 requests per personality
//	plexus-httpd -n 20           # more requests
package main

import (
	"flag"
	"fmt"
	"os"

	"plexus/internal/httpx"
	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
)

func main() {
	n := flag.Int("n", 5, "requests per server personality")
	flag.Parse()
	for _, p := range []osmodel.Personality{osmodel.SPIN, osmodel.Monolithic} {
		if err := run(p, *n); err != nil {
			fmt.Fprintf(os.Stderr, "plexus-httpd: %v\n", err)
			os.Exit(1)
		}
	}
}

func site(t *sim.Task, req *httpx.Request) httpx.Response {
	switch req.Path {
	case "/":
		return httpx.Response{Status: 200, ContentType: "text/html",
			Body: []byte("<html><body><h1>Plexus</h1><p>An extensible protocol architecture for application-specific networking.</p></body></html>\n")}
	case "/paper":
		return httpx.Response{Status: 200,
			Body: []byte("Fiuczynski & Bershad, USENIX 1996.\n")}
	case "/stats":
		return httpx.Response{Status: 200, Body: []byte("served by a protocol extension\n")}
	default:
		return httpx.Response{Status: 404, Body: []byte("not found\n")}
	}
}

func run(p osmodel.Personality, n int) error {
	net, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(),
		plexus.HostSpec{Name: "client", Personality: osmodel.SPIN},
		plexus.HostSpec{Name: "server", Personality: p})
	if err != nil {
		return err
	}
	srv, err := httpx.Serve(server, 80, site)
	if err != nil {
		return err
	}
	fmt.Printf("\n== HTTP server as %v ==\n", p)
	paths := []string{"/", "/paper", "/stats", "/missing"}
	var total sim.Time
	var count int
	for i := 0; i < n; i++ {
		path := paths[i%len(paths)]
		at := sim.Time(i) * 10 * sim.Millisecond
		client.SpawnAt(at, "get", func(task *sim.Task) {
			err := httpx.Get(task, client, server.Addr(), 80, path, func(t2 *sim.Task, r httpx.Result, err error) {
				if err != nil {
					fmt.Printf("GET %-10s error: %v\n", path, err)
					return
				}
				fmt.Printf("GET %-10s -> %d  %4dB  %8.0fµs\n", path, r.Status, len(r.Body), r.Latency.Micros())
				total += r.Latency
				count++
			})
			if err != nil {
				fmt.Printf("GET %-10s connect error: %v\n", path, err)
			}
		})
	}
	net.Sim.RunUntil(10 * 60 * sim.Second)
	if count > 0 {
		fmt.Printf("served %d requests (%d at the server), mean latency %.0fµs\n",
			count, srv.Stats().Requests+srv.Stats().BadRequests, (total / sim.Time(count)).Micros())
	}
	return nil
}
