// Command plexus-top is the telemetry plane's viewer: per-host and per-flow
// tables plus sparkline timelines, rendered from a deterministic JSONL dump
// (plexus-bench -telemetry, or any engine's WriteJSONL) or live from a
// monitored demo scenario advancing in simulated time.
//
// Usage:
//
//	plexus-top -in telemetry.jsonl    # post-hoc: render a dump
//	plexus-top -demo                  # run a monitored TCP bulk transfer +
//	                                  # UDP echo loop, refreshing the view
//	                                  # as simulated time advances
//	plexus-top -demo -refresh 50      # frame interval in simulated ms
//	plexus-top -in d.jsonl -width 72  # sparkline width in columns
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"text/tabwriter"

	"plexus/internal/netdev"
	"plexus/internal/osmodel"
	"plexus/internal/plexus"
	"plexus/internal/sim"
	"plexus/internal/telemetry"
	"plexus/internal/view"
)

func main() {
	in := flag.String("in", "", "telemetry JSONL dump to render (see plexus-bench -telemetry)")
	demo := flag.Bool("demo", false, "run a monitored demo scenario and render it live")
	refresh := flag.Int("refresh", 100, "demo frame interval, simulated milliseconds")
	width := flag.Int("width", 60, "sparkline width in columns")
	flag.Parse()

	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "plexus-top:", err)
			os.Exit(1)
		}
		pts, err := telemetry.ReadJSONL(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "plexus-top:", err)
			os.Exit(1)
		}
		render(os.Stdout, pts, *width)
	case *demo:
		if err := runDemo(sim.Time(*refresh)*sim.Millisecond, *width); err != nil {
			fmt.Fprintln(os.Stderr, "plexus-top:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runDemo runs a monitored two-host scenario — a 256KB TCP bulk transfer
// beside a continuous UDP echo loop — rendering a frame every refresh of
// simulated time. Frames repaint in place on ANSI terminals.
func runDemo(refresh sim.Time, width int) error {
	spec := func(name string) plexus.HostSpec {
		return plexus.HostSpec{Name: name, Personality: osmodel.SPIN, Dispatch: osmodel.DispatchInterrupt}
	}
	n, client, server, err := plexus.TwoHosts(1, netdev.EthernetModel(), spec("client"), spec("server"))
	if err != nil {
		return err
	}
	eng := n.Monitor(plexus.MonitorOptions{
		Telemetry:      telemetry.Options{Interval: sim.Millisecond},
		TCPStallWindow: 5 * sim.Second,
		PoolCap:        1 << 20,
	})
	if _, err := server.ListenTCP(5001, plexus.TCPAppOptions{
		OnRecv:    func(t *sim.Task, conn *plexus.TCPApp, data []byte) {},
		OnPeerFin: func(t *sim.Task, conn *plexus.TCPApp) { conn.Close(t) },
	}, nil); err != nil {
		return err
	}
	msg := make([]byte, 256<<10)
	client.Spawn("sender", func(t *sim.Task) {
		_, _ = client.ConnectTCP(t, server.Addr(), 5001, plexus.TCPAppOptions{
			OnEstablished: func(t2 *sim.Task, conn *plexus.TCPApp) {
				_ = conn.Send(t2, msg)
				conn.Close(t2)
			},
		})
	})
	var echo *plexus.UDPApp
	echo, err = server.OpenUDP(plexus.UDPAppOptions{Port: 7}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = echo.Send(t, src, srcPort, data)
	})
	if err != nil {
		return err
	}
	ping := make([]byte, 8)
	var capp *plexus.UDPApp
	capp, err = client.OpenUDP(plexus.UDPAppOptions{}, func(t *sim.Task, data []byte, src view.IP4, srcPort uint16) {
		_ = capp.Send(t, server.Addr(), 7, ping)
	})
	if err != nil {
		return err
	}
	client.Spawn("kick", func(t *sim.Task) { _ = capp.Send(t, server.Addr(), 7, ping) })

	const horizon = 2 * sim.Second
	var buf bytes.Buffer
	for until := refresh; until <= horizon; until += refresh {
		n.Sim.RunUntil(until)
		buf.Reset()
		if err := eng.WriteJSONL(&buf); err != nil {
			return err
		}
		pts, err := telemetry.ReadJSONL(bytes.NewReader(buf.Bytes()))
		if err != nil {
			return err
		}
		fmt.Print("\x1b[H\x1b[2J")
		fmt.Printf("plexus-top — t=%v (refresh %v)\n", n.Sim.Now(), refresh)
		render(os.Stdout, pts, width)
	}
	if eng.AlarmTotal() > 0 {
		fmt.Printf("\n%d watchdog alarm(s):\n", eng.AlarmTotal())
		for _, a := range eng.Alarms() {
			fmt.Printf("  %v  %-16s %s (value %d, stalled since %v)\n", a.At, a.Rule, a.Series, a.Value, a.Since)
		}
	}
	return nil
}

// column is one reassembled series: identity plus its points in time order.
type column struct {
	series, host, labels string
	pts                  []telemetry.JSONLPoint
}

func (c *column) last() int64 {
	if len(c.pts) == 0 {
		return 0
	}
	return c.pts[len(c.pts)-1].V
}

// key is the sort identity: host first so tables group naturally.
func (c *column) key() string { return c.host + "\x00" + c.series + "\x00" + c.labels }

// render draws the three sections — hosts, flows, timelines — from a flat
// point list. Output is deterministic: identical dumps render identically.
func render(w io.Writer, pts []telemetry.JSONLPoint, width int) {
	cols := map[string]*column{}
	for _, p := range pts {
		if p.Series == "" {
			continue // cell marker lines in plexus-bench -telemetry dumps
		}
		k := p.Host + "\x00" + p.Series + "\x00" + p.Labels
		c, ok := cols[k]
		if !ok {
			c = &column{series: p.Series, host: p.Host, labels: p.Labels}
			cols[k] = c
		}
		c.pts = append(c.pts, p)
	}
	ordered := make([]*column, 0, len(cols))
	for _, c := range cols {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key() < ordered[j].key() })

	renderHosts(w, ordered)
	renderFlows(w, ordered, width)
	renderTimelines(w, ordered, width)
}

// renderHosts prints one row per host that owns an mbuf pool or TCP flows:
// pool occupancy plus flow counts and totals.
func renderHosts(w io.Writer, cols []*column) {
	type hostRow struct {
		inUse, highWater int64
		conns            map[string]bool
		acked, rexmits   int64
	}
	rows := map[string]*hostRow{}
	names := []string{}
	get := func(host string) *hostRow {
		r, ok := rows[host]
		if !ok {
			r = &hostRow{conns: map[string]bool{}}
			rows[host] = r
			names = append(names, host)
		}
		return r
	}
	for _, c := range cols {
		switch c.series {
		case "mbuf.in_use":
			get(c.host).inUse = c.last()
		case "mbuf.high_water":
			get(c.host).highWater = c.last()
		case "tcp.acked_bytes":
			r := get(c.host)
			r.conns[c.labels] = true
			r.acked += c.last()
		case "tcp.retransmits":
			get(c.host).rexmits += c.last()
		}
	}
	if len(names) == 0 {
		return
	}
	fmt.Fprintln(w, "HOSTS")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  host\tmbuf in-use\tmbuf high-water\tflows\tacked bytes\trexmits")
	for _, h := range names {
		r := rows[h]
		fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%d\n", h, r.inUse, r.highWater, len(r.conns), r.acked, r.rexmits)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// renderFlows prints one row per TCP connection — last windows, progress,
// RTT estimator — plus a bytes-in-flight sparkline.
func renderFlows(w io.Writer, cols []*column, width int) {
	type flow struct {
		host, conn string
		m          map[string]*column
	}
	flows := map[string]*flow{}
	order := []string{}
	for _, c := range cols {
		if !strings.HasPrefix(c.series, "tcp.") || !strings.HasPrefix(c.labels, "conn=") {
			continue
		}
		k := c.host + "\x00" + c.labels
		f, ok := flows[k]
		if !ok {
			f = &flow{host: c.host, conn: strings.TrimPrefix(c.labels, "conn="), m: map[string]*column{}}
			flows[k] = f
			order = append(order, k)
		}
		f.m[c.series] = c
	}
	if len(order) == 0 {
		return
	}
	fmt.Fprintln(w, "FLOWS")
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  host\tconn\tcwnd\tin-flight\tacked\tsrtt (µs)\trto (µs)\trexmits\tin-flight timeline")
	last := func(f *flow, s string) int64 {
		if c, ok := f.m[s]; ok {
			return c.last()
		}
		return 0
	}
	for _, k := range order {
		f := flows[k]
		line := ""
		if c, ok := f.m["tcp.bytes_in_flight"]; ok {
			line = sparkline(c.pts, width)
		}
		fmt.Fprintf(tw, "  %s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%s\n",
			f.host, f.conn,
			last(f, "tcp.cwnd"), last(f, "tcp.bytes_in_flight"), last(f, "tcp.acked_bytes"),
			last(f, "tcp.srtt_ns")/1000, last(f, "tcp.rto_ns")/1000, last(f, "tcp.retransmits"),
			line)
	}
	tw.Flush()
	fmt.Fprintln(w)
}

// renderTimelines prints a sparkline per whole-system series (everything
// not tied to one TCP connection), with its last value.
func renderTimelines(w io.Writer, cols []*column, width int) {
	any := false
	tw := tabwriter.NewWriter(w, 0, 4, 2, ' ', 0)
	for _, c := range cols {
		if strings.HasPrefix(c.series, "tcp.") && strings.HasPrefix(c.labels, "conn=") {
			continue
		}
		if !any {
			fmt.Fprintln(w, "TIMELINES")
			any = true
		}
		name := c.series
		if c.labels != "" {
			name += "{" + c.labels + "}"
		}
		fmt.Fprintf(tw, "  %s\t%s\t%s\t%d\n", c.host, name, sparkline(c.pts, width), c.last())
	}
	if any {
		tw.Flush()
	}
}

// sparkRunes are the eight block heights of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline buckets the points into width cells by timestamp and draws each
// bucket's maximum, scaled against the whole series' range. A flat series
// renders as a flat low line; an empty one as spaces.
func sparkline(pts []telemetry.JSONLPoint, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	lo, hi := pts[0].At, pts[len(pts)-1].At
	var vmax int64
	for _, p := range pts {
		if p.V > vmax {
			vmax = p.V
		}
	}
	cells := make([]int64, width)
	filled := make([]bool, width)
	span := hi - lo
	for _, p := range pts {
		i := 0
		if span > 0 {
			i = int(int64(p.At-lo) * int64(width-1) / int64(span))
		}
		if !filled[i] || p.V > cells[i] {
			cells[i], filled[i] = p.V, true
		}
	}
	var sb strings.Builder
	for i := range cells {
		switch {
		case !filled[i]:
			sb.WriteRune(' ')
		case vmax == 0:
			sb.WriteRune(sparkRunes[0])
		default:
			idx := int(cells[i] * int64(len(sparkRunes)-1) / vmax)
			sb.WriteRune(sparkRunes[idx])
		}
	}
	return sb.String()
}
