// Command plexus-bench regenerates the paper's evaluation: every figure and
// table of §4 and §5, plus the ablations DESIGN.md calls out. Output is
// aligned text, one section per experiment, in the same rows/series the
// paper reports.
//
// Usage:
//
//	plexus-bench                 # run everything
//	plexus-bench -exp fig5       # one experiment: fig5 | tput | fig6 | fig7 | ablations
//	plexus-bench -exp fig5 -fastdriver
//	plexus-bench -size 2097152   # bulk-transfer size for tput
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"plexus/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all | fig5 | tput | fig6 | fig7 | http | ablations")
	fast := flag.Bool("fastdriver", false, "use the faster device driver variant (§4.1)")
	size := flag.Int("size", 1<<20, "bulk transfer size in bytes for -exp tput")
	flag.Parse()

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "plexus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() error { return fig5(*fast) })
	run("tput", func() error { return tput(*size) })
	run("fig6", fig6)
	run("fig7", fig7)
	run("http", httpDemo)
	run("ablations", ablations)
}

func header(title string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("-")
	}
	fmt.Println()
}

func fig5(fast bool) error {
	title := "Figure 5: UDP round-trip latency, 8-byte packets (µs)"
	if fast {
		title += " — faster device driver"
	}
	header(title)
	rows, err := bench.Fig5(fast)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tRTT (µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.0f\n", r.Device, r.System, r.RTT.Micros())
	}
	return w.Flush()
}

func tput(size int) error {
	header(fmt.Sprintf("§4.2: TCP throughput, %d-byte transfer (Mb/s)", size))
	rows, err := bench.Throughput(size)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tMb/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\n", r.Device, r.System, r.Mbps)
	}
	return w.Flush()
}

func fig6() error {
	header("Figure 6: video server CPU utilization vs client streams (T3)")
	rows, err := bench.Fig6([]int{1, 5, 10, 15, 20, 25, 30})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "streams\tSPIN/Plexus CPU\tDIGITAL UNIX CPU\tgoodput (Mb/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f%%\t%.1f%%\t%.1f\n",
			r.Streams,
			r.Utilization[bench.SysPlexusInterrupt]*100,
			r.Utilization[bench.SysDUX]*100,
			r.GoodputMbps)
	}
	return w.Flush()
}

func fig7() error {
	header("Figure 7: TCP redirection latency (request→echo, through forwarder)")
	rows, err := bench.Fig7([]int{64, 256, 512, 1024, 1460})
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "payload (B)\tPlexus in-kernel (µs)\tDUX user-level (µs)\tratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.2f\n",
			r.PayloadBytes, r.KernelLatency.Micros(), r.SpliceLatency.Micros(),
			float64(r.SpliceLatency)/float64(r.KernelLatency))
	}
	return w.Flush()
}

func httpDemo() error {
	header("HTTP service (the paper's concluding demo): mean GET latency, 1KB body")
	rows, err := bench.HTTP(20)
	if err != nil {
		return err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "server\tlatency (µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\n", r.System, r.Latency.Micros())
	}
	return w.Flush()
}

func ablations() error {
	header("Ablations")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tvalue (µs)\tnote")
	spoof, err := bench.SpoofPolicyAblation(100)
	if err != nil {
		return err
	}
	cksum, err := bench.ChecksumAblation(1400)
	if err != nil {
		return err
	}
	guards, err := bench.GuardChainAblation([]int{0, 10, 50, 100})
	if err != nil {
		return err
	}
	filters, err := bench.FilterBackendAblation(50)
	if err != nil {
		return err
	}
	ilp, err := bench.ILPAblation(10)
	if err != nil {
		return err
	}
	for _, rows := range [][]bench.AblationRow{spoof, cksum, guards, filters, ilp} {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%s\n", r.Name, r.Value.Micros(), r.Note)
		}
	}
	return w.Flush()
}
