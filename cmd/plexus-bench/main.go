// Command plexus-bench regenerates the paper's evaluation: every figure and
// table of §4 and §5, plus the ablations DESIGN.md calls out. Output is
// aligned text, one section per experiment, in the same rows/series the
// paper reports.
//
// Experiment cells run concurrently on a worker pool (see internal/bench
// RunCells); every cell owns its seeded simulator, so the reported rows are
// byte-identical at any -parallel setting — only the wall clock changes.
//
// Usage:
//
//	plexus-bench                 # run everything
//	plexus-bench -exp fig5       # one experiment: fig5 | tput | fig6 | fig7 | http | loss | rogue | scale | fabric | ablations
//	plexus-bench -exp fig5 -fastdriver
//	plexus-bench -size 2097152   # bulk-transfer size for tput
//	plexus-bench -parallel 1     # sequential (deterministic baseline)
//	plexus-bench -json           # also write BENCH_<exp>.json per experiment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"plexus/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all | fig5 | tput | fig6 | fig7 | http | latency | loss | rogue | scale | fabric | ablations | telemetry | cc")
	fast := flag.Bool("fastdriver", false, "use the faster device driver variant (§4.1)")
	size := flag.Int("size", 1<<20, "bulk transfer size in bytes for -exp tput")
	parallel := flag.Int("parallel", 0, "experiment cells run concurrently (0 = GOMAXPROCS, 1 = sequential)")
	shards := flag.Int("shards", 1, "shard worker goroutines per sharded scale cell (rows identical at any value)")
	hosts := flag.String("hosts", "1000,10000,50000", "comma-separated host counts for the sharded scale cells (\"\" = none)")
	jsonOut := flag.Bool("json", false, "write BENCH_<exp>.json with rows, wall-clock, events/sec, allocs/event")
	telemetryOut := flag.String("telemetry", "", "write the telemetry sweep's raw JSONL series to this path (determinism witness; implies running -exp telemetry's cells)")
	flag.Parse()

	bench.SetParallelism(*parallel)
	bench.SetShardWorkers(*shards)
	hostCounts, err := parseCounts(*hosts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "plexus-bench: -hosts: %v\n", err)
		os.Exit(1)
	}

	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		bench.ResetEventCount()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		rows, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "plexus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if !*jsonOut {
			return
		}
		events := bench.EventCount()
		allocs := after.Mallocs - before.Mallocs
		report := benchReport{
			Experiment:   name,
			Parallel:     bench.Parallelism(),
			WallClockSec: wall.Seconds(),
			SimEvents:    events,
			Rows:         rows,
		}
		if wall > 0 {
			report.EventsPerSec = float64(events) / wall.Seconds()
		}
		if events > 0 {
			report.AllocsPerEvent = float64(allocs) / float64(events)
		}
		if err := writeReport(report); err != nil {
			fmt.Fprintf(os.Stderr, "plexus-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
	}

	run("fig5", func() (any, error) { return fig5(*fast) })
	run("tput", func() (any, error) { return tput(*size) })
	run("fig6", fig6)
	run("fig7", fig7)
	run("http", httpDemo)
	run("latency", latency)
	run("loss", loss)
	run("rogue", rogue)
	run("scale", func() (any, error) { return scale(hostCounts) })
	run("fabric", fabricExp)
	run("ablations", ablations)
	run("telemetry", telemetryExp)
	run("cc", ccExp)

	if *telemetryOut != "" {
		if err := writeTelemetryDump(*telemetryOut); err != nil {
			fmt.Fprintf(os.Stderr, "plexus-bench: -telemetry: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeTelemetryDump re-runs the telemetry cells and writes their raw JSONL
// series — the artifact CI diffs across -parallel/-shards settings.
func writeTelemetryDump(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := bench.TelemetryDump(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// parseCounts parses a comma-separated list of positive integers; empty
// means none.
func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// benchReport is the machine-readable record of one experiment, written as
// BENCH_<exp>.json so the perf trajectory is tracked across PRs.
type benchReport struct {
	Experiment     string  `json:"experiment"`
	Parallel       int     `json:"parallel"`
	WallClockSec   float64 `json:"wall_clock_sec"`
	SimEvents      uint64  `json:"sim_events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	Rows           any     `json:"rows"`
}

func writeReport(r benchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(fmt.Sprintf("BENCH_%s.json", r.Experiment), append(data, '\n'), 0o644)
}

func header(title string) {
	fmt.Printf("\n%s\n", title)
	for range title {
		fmt.Print("-")
	}
	fmt.Println()
}

func fig5(fast bool) (any, error) {
	title := "Figure 5: UDP round-trip latency, 8-byte packets (µs)"
	if fast {
		title += " — faster device driver"
	}
	header(title)
	rows, err := bench.Fig5(fast)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tRTT (µs)\tp50\tp90\tp99")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\n",
			r.Device, r.System, r.RTT.Micros(), r.P50.Micros(), r.P90.Micros(), r.P99.Micros())
	}
	return rows, w.Flush()
}

func tput(size int) (any, error) {
	header(fmt.Sprintf("§4.2: TCP throughput, %d-byte transfer (Mb/s)", size))
	rows, err := bench.Throughput(size)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tMb/s")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.1f\n", r.Device, r.System, r.Mbps)
	}
	return rows, w.Flush()
}

func fig6() (any, error) {
	header("Figure 6: video server CPU utilization vs client streams (T3)")
	rows, err := bench.Fig6([]int{1, 5, 10, 15, 20, 25, 30})
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "streams\tSPIN/Plexus CPU\tDIGITAL UNIX CPU\tgoodput (Mb/s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.1f%%\t%.1f%%\t%.1f\n",
			r.Streams,
			r.Utilization[bench.SysPlexusInterrupt]*100,
			r.Utilization[bench.SysDUX]*100,
			r.GoodputMbps)
	}
	return rows, w.Flush()
}

func fig7() (any, error) {
	header("Figure 7: TCP redirection latency (request→echo, through forwarder)")
	rows, err := bench.Fig7([]int{64, 256, 512, 1024, 1460})
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "payload (B)\tPlexus in-kernel (µs)\tDUX user-level (µs)\tratio")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%.0f\t%.0f\t%.2f\n",
			r.PayloadBytes, r.KernelLatency.Micros(), r.SpliceLatency.Micros(),
			float64(r.SpliceLatency)/float64(r.KernelLatency))
	}
	return rows, w.Flush()
}

func httpDemo() (any, error) {
	header("HTTP service (the paper's concluding demo): mean GET latency, 1KB body")
	rows, err := bench.HTTP(20)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "server\tlatency (µs)")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%.0f\n", r.System, r.Latency.Micros())
	}
	return rows, w.Flush()
}

func latency() (any, error) {
	header("RTT distribution: UDP echo percentiles with the metrics plane enabled (µs)")
	rows, err := bench.Latency(bench.DefaultLatencyRounds)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "device\tsystem\tmean\tp50\tp90\tp99\tmbuf in-use\tmbuf high-water")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.0f\t%d\t%d\n",
			r.Device, r.System, r.Mean.Micros(), r.P50.Micros(), r.P90.Micros(), r.P99.Micros(),
			r.Mbuf.InUse, r.Mbuf.HighWater)
	}
	return rows, w.Flush()
}

func loss() (any, error) {
	header("Robustness: goodput/delivery/latency vs injected frame loss (Ethernet)")
	rows, err := bench.Loss(bench.DefaultLossRates())
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "pattern\tloss\tsystem\tworkload\tmetric\tdelivered\tlost\tlink drops")
	for _, r := range rows {
		var metric string
		switch r.Workload {
		case bench.WorkloadTCPBulk:
			metric = fmt.Sprintf("%.2f Mb/s", r.GoodputMbps)
		case bench.WorkloadSPPStream:
			metric = fmt.Sprintf("%.0f%% msgs, p99 %.0fµs", r.DeliveredPct, r.P99.Micros())
		default:
			metric = fmt.Sprintf("p50 %.0fµs p99 %.0fµs", r.P50.Micros(), r.P99.Micros())
		}
		fmt.Fprintf(w, "%s\t%.0f%%\t%s\t%s\t%s\t%.1f%%\t%d\t%d\n",
			r.Pattern, r.RatePct, r.System, r.Workload, metric,
			r.DeliveredPct, r.Fault.Lost, r.LinkDropped)
	}
	return rows, w.Flush()
}

func rogue() (any, error) {
	header("Extension safety: well-behaved flows vs misbehaving extensions (Ethernet)")
	rows, err := bench.Rogue(bench.DefaultRogueCounts())
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rogues\tsystem\tworkload\tmetric\tdelivered\tquarantined\tpanics\tterm\tguard overruns")
	for _, r := range rows {
		var metric string
		if r.Workload == bench.WorkloadTCPBulk {
			metric = fmt.Sprintf("%.2f Mb/s", r.GoodputMbps)
		} else {
			metric = fmt.Sprintf("%.0f%% msgs", r.DeliveredPct)
		}
		fmt.Fprintf(w, "%d\t%s\t%s\t%s\t%.1f%%\t%d\t%d\t%d\t%d\n",
			r.Rogues, r.System, r.Workload, metric, r.DeliveredPct,
			r.Quarantined, r.Panics+r.GuardPanics, r.Terminations, r.GuardOverruns)
	}
	return rows, w.Flush()
}

func scale(hostCounts []int) (any, error) {
	header("Scale: client cells vs one server, plus sharded N-host topologies")
	rows, err := bench.Scale(bench.DefaultScaleClients(), hostCounts, bench.DefaultScaleDuration)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "hosts\tclients\tsystem\tworkload\tsegs\tops\tgoodput (Mb/s)\tserver CPU\tp50 (µs)\tp99 (µs)\tretries\tswitch drops\trx errors\tevents")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d\t%s\t%s\t%d\t%d\t%.2f\t%.1f%%\t%.0f\t%.0f\t%d\t%d\t%d\t%d\n",
			r.Hosts, r.Clients, r.System, r.Workload, r.Segments, r.Ops, r.GoodputMbps,
			r.ServerCPU*100, r.P50.Micros(), r.P99.Micros(),
			r.Retries, r.SwitchDrops, r.RxErrors, r.Events)
	}
	return rows, w.Flush()
}

func fabricExp() (any, error) {
	header("Fabric: VIP-load-balanced datacenter cell (ACL → LB → NAT → ECMP on the gateway)")
	rows, err := bench.Fabric(bench.DefaultFabricRates(), bench.DefaultFabricPools(), bench.DefaultFabricDuration)
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate (req/s)\tpool\tclients\tops\tgoodput (Mb/s)\tp50 (µs)\tp99 (µs)\tretries\tskew\tNAT entries\tlink split\tpipe drops\tevents")
	for _, r := range rows {
		split := ""
		for i, h := range r.LinkHits {
			if i > 0 {
				split += "/"
			}
			split += strconv.FormatUint(h, 10)
		}
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.2f\t%.0f\t%.0f\t%d\t%.2f\t%d\t%s\t%d\t%d\n",
			r.Rate, r.PoolSize, r.Clients, r.Ops, r.GoodputMbps,
			r.P50.Micros(), r.P99.Micros(), r.Retries, r.Skew,
			r.NATOccupancy, split, r.PipeDrops, r.Events)
	}
	return rows, w.Flush()
}

func telemetryExp() (any, error) {
	header("Telemetry: whole-system 1ms sampling — coverage, determinism digest, conformance gauges")
	rows, err := bench.Telemetry()
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "system\tworkload\tshards\tseries\tpoints\tticks\tdigest\talarms\tRSTs rej\tTW rearms\tTW quiet drops")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%s\t%d\t%d\t%d\t%d\n",
			r.System, r.Workload, r.Shards, r.Series, r.Points, r.Ticks, r.Digest, r.Alarms,
			r.TCP.RSTsRejected, r.TCP.TimeWaitRearms, r.TCP.TimeWaitQuietDrops)
	}
	return rows, w.Flush()
}

func ccExp() (any, error) {
	header("Congestion control: two flows sharing one switch port — fairness sweep")
	rows, err := bench.CC()
	if err != nil {
		return nil, err
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algos\tbw (Mb/s)\tprop (µs)\tloss\tgoodput A/B (Mb/s)\tJain\trexmit A/B\tqueue peak/mean/cap\tport drops\taudit viol")
	for _, r := range rows {
		fmt.Fprintf(w, "%s+%s\t%d\t%d\t%.0f%%\t%.2f / %.2f\t%.3f\t%.3f / %.3f\t%d / %.1f / %d\t%d\t%d\n",
			r.AlgoA, r.AlgoB, r.BandwidthMbps, r.PropDelayUs, r.LossPct,
			r.GoodputA, r.GoodputB, r.Jain, r.RexmitRatioA, r.RexmitRatioB,
			r.QueuePeak, r.QueueMean, r.QueueCap, r.PortDrops, r.AuditViolations)
	}
	return rows, w.Flush()
}

func ablations() (any, error) {
	header("Ablations")
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "configuration\tvalue (µs)\tnote")
	spoof, err := bench.SpoofPolicyAblation(100)
	if err != nil {
		return nil, err
	}
	cksum, err := bench.ChecksumAblation(1400)
	if err != nil {
		return nil, err
	}
	guards, err := bench.GuardChainAblation([]int{0, 10, 50, 100})
	if err != nil {
		return nil, err
	}
	filters, err := bench.FilterBackendAblation(50)
	if err != nil {
		return nil, err
	}
	ilp, err := bench.ILPAblation(10)
	if err != nil {
		return nil, err
	}
	var all []bench.AblationRow
	for _, rows := range [][]bench.AblationRow{spoof, cksum, guards, filters, ilp} {
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%.1f\t%s\n", r.Name, r.Value.Micros(), r.Note)
			all = append(all, r)
		}
	}
	return all, w.Flush()
}
